package machine

import (
	"testing"

	"gsched/internal/ir"
)

func TestRS6KParameters(t *testing.T) {
	d := RS6K()
	if d.NumUnits[Fixed] != 1 || d.NumUnits[Float] != 1 || d.NumUnits[Branch] != 1 {
		t.Errorf("RS6K units = %v, want one of each (§2.1)", d.NumUnits)
	}
	if d.LoadDelay != 1 {
		t.Errorf("delayed load = %d, want 1", d.LoadDelay)
	}
	if d.CmpBranchDelay != 3 {
		t.Errorf("compare->branch = %d, want 3", d.CmpBranchDelay)
	}
	if d.FloatDelay != 1 || d.FloatCmpBranchDelay != 5 {
		t.Errorf("float delays = %d/%d, want 1/5", d.FloatDelay, d.FloatCmpBranchDelay)
	}
}

func TestSuperscalarPreset(t *testing.T) {
	d := Superscalar(4, 2)
	if d.NumUnits[Fixed] != 4 || d.NumUnits[Branch] != 2 {
		t.Errorf("units = %v", d.NumUnits)
	}
	if d.CmpBranchDelay != RS6K().CmpBranchDelay {
		t.Error("wider machines keep RS6K delays")
	}
	if d.Name != "ss4x2" {
		t.Errorf("name = %q", d.Name)
	}
}

func TestUnitAssignment(t *testing.T) {
	d := RS6K()
	for op, want := range map[ir.Op]UnitType{
		ir.OpAdd:  Fixed,
		ir.OpLoad: Fixed,
		ir.OpCmp:  Fixed,
		ir.OpB:    Branch,
		ir.OpBC:   Branch,
		ir.OpRet:  Branch,
		ir.OpCall: Fixed,
	} {
		if got := d.Unit(op); got != want {
			t.Errorf("Unit(%s) = %s, want %s", op, got, want)
		}
	}
}

func TestExecTimes(t *testing.T) {
	d := RS6K()
	if d.Exec(ir.OpAdd) != 1 || d.Exec(ir.OpLoad) != 1 || d.Exec(ir.OpBC) != 1 {
		t.Error("single-cycle ops wrong")
	}
	if d.Exec(ir.OpMul) != d.MulTime || d.Exec(ir.OpMulI) != d.MulTime {
		t.Error("multiply time wrong")
	}
	if d.Exec(ir.OpDiv) != d.DivTime || d.Exec(ir.OpRem) != d.DivTime {
		t.Error("divide time wrong")
	}
	if d.Exec(ir.OpMul) <= 1 || d.Exec(ir.OpDiv) <= d.Exec(ir.OpMul) {
		t.Error("multi-cycle ordering: div > mul > 1 expected")
	}
}

func TestDelaySemantics(t *testing.T) {
	d := RS6K()
	mkLoad := func() *ir.Instr {
		return &ir.Instr{Op: ir.OpLoad, Def: ir.GPR(1), Def2: ir.NoReg, A: ir.NoReg, B: ir.NoReg,
			Mem: &ir.Mem{Sym: "a", Base: ir.GPR(2)}}
	}
	mkLU := func() *ir.Instr {
		return &ir.Instr{Op: ir.OpLoadU, Def: ir.GPR(1), Def2: ir.GPR(2), A: ir.NoReg, B: ir.NoReg,
			Mem: &ir.Mem{Sym: "a", Base: ir.GPR(2)}}
	}
	cmp := &ir.Instr{Op: ir.OpCmp, Def: ir.CR(0), Def2: ir.NoReg, A: ir.GPR(1), B: ir.GPR(2)}
	bc := &ir.Instr{Op: ir.OpBC, Def: ir.NoReg, Def2: ir.NoReg, A: ir.CR(0), B: ir.NoReg}
	add := &ir.Instr{Op: ir.OpAdd, Def: ir.GPR(3), Def2: ir.NoReg, A: ir.GPR(1), B: ir.GPR(2)}

	if got := d.Delay(mkLoad(), add, ir.GPR(1)); got != 1 {
		t.Errorf("load->use delay = %d, want 1", got)
	}
	// The LU's updated base is NOT subject to the load delay.
	if got := d.Delay(mkLU(), add, ir.GPR(2)); got != 0 {
		t.Errorf("LU base-update delay = %d, want 0", got)
	}
	if got := d.Delay(mkLU(), add, ir.GPR(1)); got != 1 {
		t.Errorf("LU value delay = %d, want 1", got)
	}
	if got := d.Delay(cmp, bc, ir.CR(0)); got != 3 {
		t.Errorf("cmp->branch delay = %d, want 3", got)
	}
	// Compare feeding a non-branch carries no delay.
	if got := d.Delay(cmp, add, ir.CR(0)); got != 0 {
		t.Errorf("cmp->alu delay = %d, want 0", got)
	}
	if got := d.Delay(add, bc, ir.GPR(3)); got != 0 {
		t.Errorf("alu->branch delay = %d, want 0", got)
	}
}

func TestMaxDelay(t *testing.T) {
	d := RS6K()
	if got := d.MaxDelay(); got != 5 {
		t.Errorf("MaxDelay = %d, want 5 (float compare)", got)
	}
}

func TestStringIncludesShape(t *testing.T) {
	s := Superscalar(2, 1).String()
	if s == "" || s == "ss2x1" {
		t.Errorf("String() too terse: %q", s)
	}
}
