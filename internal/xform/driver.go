package xform

import (
	"context"
	"fmt"

	"gsched/internal/cfg"
	"gsched/internal/core"
	"gsched/internal/ir"
	"gsched/internal/rename"
	"gsched/internal/verify"
)

// Config selects which parts of the §6 pipeline run.
type Config struct {
	// Unroll inner loops of at most UnrollMaxBlocks blocks once before
	// the first scheduling pass.
	Unroll          bool
	UnrollMaxBlocks int
	// Rotate inner loops of at most RotateMaxBlocks blocks after the
	// first pass and schedule them again.
	Rotate          bool
	RotateMaxBlocks int
	// Superblock enables profile-driven tail duplication before the
	// first scheduling pass. It only fires when the scheduling options
	// both allow duplication (Options.Duplicate, i.e. level=dup) and
	// carry an edge profile; the thresholds are DefaultSuperblock's.
	Superblock bool
}

// DefaultConfig mirrors the paper's prototype: unroll and rotate inner
// loops with up to 4 basic blocks, plus superblock formation when a
// profile is available at level=dup.
func DefaultConfig() Config {
	return Config{
		Unroll: true, UnrollMaxBlocks: 4,
		Rotate: true, RotateMaxBlocks: 4,
		Superblock: true,
	}
}

// Stats extends the scheduler's statistics with transformation counts.
type Stats struct {
	core.Stats
	LoopsUnrolled  int
	LoopsRotated   int
	TailDuplicated int
}

// Run executes the general flow of the global scheduling prototype
// (§6): 1. certain inner loops are unrolled; 2. global scheduling is
// applied to the inner regions; 3. certain inner loops are rotated;
// 4. global scheduling is applied a second time to the rotated inner
// loops and the outer regions; finally the basic block scheduler runs on
// every block.
func Run(f *ir.Func, opts core.Options, cfgX Config) (Stats, error) {
	return RunCtx(context.Background(), f, opts, cfgX)
}

// RunCtx is Run under a context. Cancellation is checked between the
// pipeline's stages and between regions within each scheduling pass, so
// a timed-out request aborts promptly with an error wrapping ctx.Err().
func RunCtx(ctx context.Context, f *ir.Func, opts core.Options, cfgX Config) (Stats, error) {
	var st Stats
	if err := ctx.Err(); err != nil {
		return st, fmt.Errorf("xform: cancelled: %w", err)
	}
	g := cfg.Build(f)
	if opts.Rename {
		done := opts.Trace.TimePhase(core.PhaseRename)
		st.RenamedWebs += rename.Run(f, g)
		done()
		opts.Rename = false // done once
	}

	// With opts.Verify set, every scheduling pass is bracketed by a
	// snapshot and an independent legality check. Unrolling and rotation
	// restructure the flow graph, so each bracket snapshots after them:
	// within a bracket the block skeleton is invariant, which is what the
	// verifier relies on.
	check := func(snap *verify.Snapshot, rules verify.Rules) error {
		if snap == nil {
			return nil
		}
		if err := verify.Check(snap, f, rules); err != nil {
			return fmt.Errorf("xform: illegal schedule: %w", err)
		}
		return nil
	}

	if opts.Level > core.LevelNone {
		if cfgX.Superblock && opts.Duplicate && opts.Profile != nil {
			done := opts.Trace.TimePhase(core.PhaseXform)
			st.TailDuplicated = FormSuperblocks(f, opts.Profile, DefaultSuperblock())
			done()
		}
		if cfgX.Unroll {
			done := opts.Trace.TimePhase(core.PhaseXform)
			st.LoopsUnrolled = transformInnerLoops(f, cfgX.UnrollMaxBlocks, UnrollOnce)
			done()
		}
		var snap *verify.Snapshot
		if opts.Verify {
			snap = verify.Capture(f)
		}
		// First pass: inner regions only.
		if err := scheduleFiltered(ctx, f, &opts, &st.Stats, func(r *cfg.Region, height int) bool {
			return r.IsLoop && height == 0
		}); err != nil {
			return st, err
		}
		if err := check(snap, opts.VerifyRules()); err != nil {
			return st, err
		}
		rotated := 0
		if cfgX.Rotate {
			done := opts.Trace.TimePhase(core.PhaseXform)
			rotated = transformInnerLoops(f, cfgX.RotateMaxBlocks, Rotate)
			done()
			st.LoopsRotated = rotated
		}
		if opts.Verify {
			snap = verify.Capture(f)
		}
		// Second pass: rotated inner loops (now fresh regions) and the
		// outer regions.
		if err := scheduleFiltered(ctx, f, &opts, &st.Stats, func(r *cfg.Region, height int) bool {
			if height >= opts.MaxRegionLevels {
				return false
			}
			if r.IsLoop && height == 0 {
				return rotated > 0 // inner loops again only if rotation changed them
			}
			return true
		}); err != nil {
			return st, err
		}
		if err := check(snap, opts.VerifyRules()); err != nil {
			return st, err
		}
	}

	if opts.LocalPass {
		if err := ctx.Err(); err != nil {
			return st, fmt.Errorf("xform: cancelled: %w", err)
		}
		var snap *verify.Snapshot
		if opts.Verify {
			snap = verify.Capture(f)
		}
		mach := opts.Machine
		done := opts.Trace.TimePhase(core.PhaseLocal)
		for _, b := range f.Blocks {
			core.ScheduleBlockLocalPolicy(b, mach, opts.Policy)
			st.LocalBlocks++
		}
		done()
		// The basic block post-pass may not move anything across blocks.
		if err := check(snap, verify.Rules{}); err != nil {
			return st, err
		}
	}

	if opts.Level >= core.LevelOptimal {
		if err := ctx.Err(); err != nil {
			return st, fmt.Errorf("xform: cancelled: %w", err)
		}
		var snap *verify.Snapshot
		if opts.Verify {
			snap = verify.Capture(f)
		}
		done := opts.Trace.TimePhase(core.PhaseExact)
		err := core.ExactPassCtx(ctx, f, &opts, &st.Stats)
		done()
		if err != nil {
			return st, err
		}
		// The exact tier only permutes within blocks, like the post-pass.
		if err := check(snap, verify.Rules{}); err != nil {
			return st, err
		}
	}
	return st, f.Validate()
}

// RunProgram applies Run to every function of p. Functions are
// independent, so with opts.Parallelism > 1 they run concurrently on a
// bounded worker pool; schedules and merged Stats are identical to the
// sequential run (per-function results are combined in program order
// after all workers finish).
func RunProgram(p *ir.Program, opts core.Options, cfgX Config) (Stats, error) {
	return RunProgramCtx(context.Background(), p, opts, cfgX)
}

// RunProgramCtx is RunProgram under a context: cancellation propagates
// into every function's pipeline run.
func RunProgramCtx(ctx context.Context, p *ir.Program, opts core.Options, cfgX Config) (Stats, error) {
	var st Stats
	if opts.Parallelism > 1 && len(p.Funcs) > 1 {
		stats := make([]Stats, len(p.Funcs))
		errs := make([]error, len(p.Funcs))
		core.RunFuncsParallel(len(p.Funcs), opts.Parallelism, func(i int) {
			stats[i], errs[i] = RunCtx(ctx, p.Funcs[i], opts, cfgX)
		})
		for i, err := range errs {
			if err != nil {
				return st, err
			}
			st.Stats.Add(stats[i].Stats)
			st.LoopsUnrolled += stats[i].LoopsUnrolled
			st.LoopsRotated += stats[i].LoopsRotated
			st.TailDuplicated += stats[i].TailDuplicated
		}
		return st, nil
	}
	for _, f := range p.Funcs {
		s, err := RunCtx(ctx, f, opts, cfgX)
		if err != nil {
			return st, err
		}
		st.Stats.Add(s.Stats)
		st.LoopsUnrolled += s.LoopsUnrolled
		st.LoopsRotated += s.LoopsRotated
		st.TailDuplicated += s.TailDuplicated
	}
	return st, nil
}

// TransformOnly applies unrolling and rotation without any global
// scheduling. It approximates the code replication techniques [GR90] that
// the paper's BASE compiler already contained ("a set of code replication
// techniques that solve certain loop-closing delay problems"), and is
// used by the ablation experiments to separate the transformation's
// contribution from the global scheduler's.
func TransformOnly(f *ir.Func, cfgX Config) Stats {
	var st Stats
	if cfgX.Unroll {
		st.LoopsUnrolled = transformInnerLoops(f, cfgX.UnrollMaxBlocks, UnrollOnce)
	}
	if cfgX.Rotate {
		st.LoopsRotated = transformInnerLoops(f, cfgX.RotateMaxBlocks, Rotate)
	}
	return st
}

// TransformOnlyProgram applies TransformOnly to every function.
func TransformOnlyProgram(p *ir.Program, cfgX Config) Stats {
	var st Stats
	for _, f := range p.Funcs {
		s := TransformOnly(f, cfgX)
		st.LoopsUnrolled += s.LoopsUnrolled
		st.LoopsRotated += s.LoopsRotated
	}
	return st
}

// transformInnerLoops repeatedly finds an untouched inner loop of at most
// maxBlocks blocks and applies xf to it. The flow analyses are rebuilt
// only after a successful transformation — a refused loop leaves f
// untouched (the transforms check eligibility before mutating), so the
// existing graph stays valid and the scan continues on it. Returns the
// number of successful transformations.
func transformInnerLoops(f *ir.Func, maxBlocks int,
	xf func(*ir.Func, *cfg.Graph, *cfg.LoopInfo, *cfg.Region) bool) int {

	donePointers := make(map[*ir.Block]bool)
	count := 0
	g := cfg.Build(f)
	li := cfg.FindLoops(g)
	for {
		if li.Irreducible {
			return count
		}
		var target *cfg.Region
		li.Root.Walk(func(r *cfg.Region) {
			if target != nil || !r.IsLoop || !r.IsInner() {
				return
			}
			if len(r.Blocks) > maxBlocks {
				return
			}
			if donePointers[f.Blocks[r.Header]] {
				return
			}
			target = r
		})
		if target == nil {
			return count
		}
		donePointers[f.Blocks[target.Header]] = true
		if xf(f, g, li, target) {
			count++
			g = cfg.Build(f)
			li = cfg.FindLoops(g)
		}
	}
}

// scheduleFiltered schedules the regions selected by keep (given the
// region and its nesting height), innermost first, honouring the size
// caps in opts. The walk, its region-level parallelism, and its
// cancellation behaviour live in core.ScheduleRegionTree; this wrapper
// only rebuilds the flow analyses (the transforms restructure the graph
// between passes).
func scheduleFiltered(ctx context.Context, f *ir.Func, opts *core.Options, st *core.Stats,
	keep func(r *cfg.Region, height int) bool) error {

	g := cfg.Build(f)
	li := cfg.FindLoops(g)
	if li.Irreducible {
		st.RegionsSkipped++
		return nil
	}
	return core.ScheduleRegionTree(ctx, f, g, li, opts, st, keep)
}
