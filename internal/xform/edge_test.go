package xform

import (
	"testing"

	"gsched/internal/cfg"
	"gsched/internal/core"
	"gsched/internal/ir"
	"gsched/internal/machine"
	"gsched/internal/minic"
	"gsched/internal/sim"
)

func compileAndRun(t *testing.T, src, entry string, args []int64, transform func(*ir.Program)) int64 {
	t.Helper()
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if transform != nil {
		transform(prog)
	}
	for _, f := range prog.Funcs {
		if err := f.Validate(); err != nil {
			t.Fatalf("invalid: %v\n%s", err, f)
		}
	}
	m, err := sim.Load(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(entry, args, nil, sim.Options{MaxInstrs: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	return res.Ret
}

// TestUnrollBottomTestLoop: a do-while loop's latch ends in a
// conditional back edge that falls through to the exit; unrolling must
// preserve the fallthrough with its jump block.
func TestUnrollBottomTestLoop(t *testing.T) {
	src := `
int f(int n) {
    int s = 0;
    int i = 0;
    do {
        s += i * i;
        i++;
    } while (i < n);
    return s;
}`
	ref := func(n int64) int64 {
		s, i := int64(0), int64(0)
		for {
			s += i * i
			i++
			if i >= n {
				return s
			}
		}
	}
	for _, n := range []int64{1, 2, 3, 8, 9} {
		got := compileAndRun(t, src, "f", []int64{n}, func(p *ir.Program) {
			f := p.Func("f")
			g := cfg.Build(f)
			li := cfg.FindLoops(g)
			var loop *cfg.Region
			li.Root.Walk(func(r *cfg.Region) {
				if loop == nil && r.IsLoop && r.IsInner() {
					loop = r
				}
			})
			if loop == nil {
				t.Fatal("no loop found")
			}
			if !UnrollOnce(f, g, li, loop) {
				t.Fatal("unroll refused the do-while loop")
			}
		})
		if got != ref(n) {
			t.Errorf("n=%d: got %d, want %d", n, got, ref(n))
		}
	}
}

// TestUnrollLoopWithInternalBranches: the loop body contains an if/else
// diamond; all labels must be remapped into the clone.
func TestUnrollLoopWithInternalBranches(t *testing.T) {
	src := `
int f(int n) {
    int s = 0;
    int i = 0;
    while (i < n) {
        if (i % 3 == 0) s += i;
        else s -= i;
        i++;
    }
    return s;
}`
	ref := func(n int64) int64 {
		s := int64(0)
		for i := int64(0); i < n; i++ {
			if i%3 == 0 {
				s += i
			} else {
				s -= i
			}
		}
		return s
	}
	for _, n := range []int64{0, 1, 5, 12} {
		got := compileAndRun(t, src, "f", []int64{n}, func(p *ir.Program) {
			f := p.Func("f")
			g := cfg.Build(f)
			li := cfg.FindLoops(g)
			var loop *cfg.Region
			li.Root.Walk(func(r *cfg.Region) {
				if loop == nil && r.IsLoop && r.IsInner() {
					loop = r
				}
			})
			if !UnrollOnce(f, g, li, loop) {
				t.Fatal("unroll refused")
			}
		})
		if got != ref(n) {
			t.Errorf("n=%d: got %d, want %d", n, got, ref(n))
		}
	}
}

// TestRotateThenScheduleNested: rotating the inner loop of a nested pair
// and rescheduling everything preserves the result.
func TestRotateThenScheduleNested(t *testing.T) {
	src := `
int g[64];
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < 4; j++) {
            g[(i + j) % 64] = i * j;
        }
        s += g[i % 64];
    }
    return s;
}`
	want := compileAndRun(t, src, "f", []int64{20}, nil)
	got := compileAndRun(t, src, "f", []int64{20}, func(p *ir.Program) {
		for _, f := range p.Funcs {
			if _, err := Run(f, core.Defaults(machine.RS6K(), core.LevelSpeculative), DefaultConfig()); err != nil {
				t.Fatal(err)
			}
		}
	})
	if got != want {
		t.Errorf("got %d, want %d", got, want)
	}
}

// TestTransformOnlyIsBehaviourNeutral: unroll+rotate without scheduling
// changes neither results nor (up to loop-exit bookkeeping) much code.
func TestTransformOnlyIsBehaviourNeutral(t *testing.T) {
	src := `
int f(int n) {
    int s = 1;
    int i = 0;
    while (i < n) {
        s = s * 3 % 1009;
        i++;
    }
    return s;
}`
	want := compileAndRun(t, src, "f", []int64{25}, nil)
	var st Stats
	got := compileAndRun(t, src, "f", []int64{25}, func(p *ir.Program) {
		st = TransformOnlyProgram(p, DefaultConfig())
	})
	if got != want {
		t.Errorf("got %d, want %d", got, want)
	}
	if st.LoopsUnrolled == 0 || st.LoopsRotated == 0 {
		t.Errorf("transformations did not trigger: %+v", st)
	}
}

// TestUnrollRespectsBlockCap via the driver config.
func TestUnrollRespectsBlockCap(t *testing.T) {
	src := `
int f(int n) {
    int s = 0;
    int i = 0;
    while (i < n) {
        if (i % 2 == 0) { if (i % 4 == 0) s += 2; else s += 1; }
        else { if (i % 3 == 0) s -= 2; else s -= 1; }
        i++;
    }
    return s;
}`
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	cfgX := DefaultConfig()
	cfgX.UnrollMaxBlocks = 2 // the diamond body exceeds this
	st := TransformOnlyProgram(prog, cfgX)
	if st.LoopsUnrolled != 0 {
		t.Errorf("loop above the cap was unrolled: %+v", st)
	}
}
