package xform

import (
	"testing"

	"gsched/internal/core"
	"gsched/internal/ir"
	"gsched/internal/machine"
	"gsched/internal/paperex"
	"gsched/internal/sim"
)

func TestCounterLoopOnMinMax(t *testing.T) {
	prog, f := paperex.MinMax()
	if n := CounterLoops(f); n != 1 {
		t.Fatalf("converted %d loops, want 1\n%s", n, f)
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("invalid after conversion: %v\n%s", err, f)
	}
	// The latch now ends in BCT with no AI/C pair.
	var bct *ir.Instr
	f.Instrs(func(_ *ir.Block, i *ir.Instr) {
		if i.Op == ir.OpBCT {
			bct = i
		}
	})
	if bct == nil {
		t.Fatalf("no BCT emitted:\n%s", f)
	}
	// Induction arithmetic gone: the paper's I18/I19 disappear.
	ai, cmps := 0, 0
	lo, hi := paperex.LoopBlocks()
	for _, b := range f.Blocks[lo+1 : hi+1] { // shifted by the preheader
		for _, i := range b.Instrs {
			if i.Op == ir.OpAddI && i.Imm == 2 {
				ai++
			}
			if i.Op == ir.OpCmp && i.B == paperex.RegN {
				cmps++
			}
		}
	}
	if ai != 0 || cmps != 0 {
		t.Errorf("loop still contains induction code (AI=%d, C=%d):\n%s", ai, cmps, f)
	}

	// Semantics across trip counts (odd n: the paper's loop shape).
	m, err := sim.Load(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		a    []int64
		want int64
	}{
		{[]int64{5, 9, -2}, -2},
		{[]int64{5, 9, -2, 3, 14, 7, 0, 11, 6}, -2},
		{[]int64{4, 8, 6}, 4},
	} {
		res, err := m.Run("minmax", []int64{int64(len(tc.a))}, map[string][]int64{"a": tc.a}, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Ret != tc.want {
			t.Errorf("minmax(%v) = %d, want %d", tc.a, res.Ret, tc.want)
		}
	}
	// n=1: the guard skips the loop entirely; the counter path never runs.
	res, err := m.Run("minmax", []int64{1}, map[string][]int64{"a": {42}}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 42 {
		t.Errorf("minmax single element = %d, want 42", res.Ret)
	}
}

func TestCounterLoopSpeedsUpMinMax(t *testing.T) {
	cycles := func(counter bool) int64 {
		prog, f := paperex.MinMax()
		if counter {
			if CounterLoops(f) != 1 {
				t.Fatal("conversion failed")
			}
		}
		if _, err := core.ScheduleFunc(f, core.Defaults(machine.RS6K(), core.LevelSpeculative)); err != nil {
			t.Fatal(err)
		}
		m, err := sim.Load(prog)
		if err != nil {
			t.Fatal(err)
		}
		a := []int64{0}
		for v := int64(1); len(a) < 81; v += 2 {
			a = append(a, v, -v)
		}
		res, err := m.Run("minmax", []int64{int64(len(a))}, map[string][]int64{"a": a},
			sim.Options{Machine: machine.RS6K(), ForgivingLoads: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	plain := cycles(false)
	counted := cycles(true)
	t.Logf("minmax: %d cycles without counter register, %d with", plain, counted)
	if counted >= plain {
		t.Errorf("counter register should reduce cycles: %d vs %d", counted, plain)
	}
}

func TestCounterLoopRefusals(t *testing.T) {
	// A loop whose induction variable is used in the body must not
	// convert.
	f := ir.NewFunc("t")
	b := ir.NewBuilder(f)
	i, n, s, cr, crg := ir.GPR(0), ir.GPR(1), ir.GPR(2), ir.CR(0), ir.CR(1)
	f.Params = []ir.Reg{n}
	b.Block("entry")
	b.LI(i, 0)
	b.LI(s, 0)
	b.Cmp(crg, i, n)
	b.BF("exit", crg, ir.BitLT)
	b.Block("loop")
	b.Op2(ir.OpAdd, s, s, i) // body uses i
	b.AI(i, i, 1)
	b.Cmp(cr, i, n)
	b.BT("loop", cr, ir.BitLT)
	b.Block("exit")
	b.Ret(s)
	f.ReindexBlocks()
	if got := CounterLoops(f); got != 0 {
		t.Errorf("converted a loop whose induction variable is live in the body")
	}

	// Non-power-of-two step must not convert.
	f2 := ir.NewFunc("t2")
	b2 := ir.NewBuilder(f2)
	f2.Params = []ir.Reg{n}
	b2.Block("entry")
	b2.LI(i, 0)
	b2.Cmp(crg, i, n)
	b2.BF("exit", crg, ir.BitLT)
	b2.Block("loop")
	b2.AI(i, i, 3)
	b2.Cmp(cr, i, n)
	b2.BT("loop", cr, ir.BitLT)
	b2.Block("exit")
	b2.Ret(n)
	f2.ReindexBlocks()
	if got := CounterLoops(f2); got != 0 {
		t.Errorf("converted a step-3 loop")
	}

	// Unguarded loop (no dominating i<n proof) must not convert.
	f3 := ir.NewFunc("t3")
	b3 := ir.NewBuilder(f3)
	f3.Params = []ir.Reg{n}
	b3.Block("entry")
	b3.LI(i, 0)
	b3.Block("loop")
	b3.AI(i, i, 1)
	b3.Cmp(cr, i, n)
	b3.BT("loop", cr, ir.BitLT)
	b3.Block("exit")
	b3.Ret(n)
	f3.ReindexBlocks()
	if got := CounterLoops(f3); got != 0 {
		t.Errorf("converted an unguarded do-while loop")
	}
}
