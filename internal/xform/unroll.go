// Package xform implements the loop transformations of the paper's §6
// configuration: unrolling inner loops once before global scheduling,
// rotating small inner loops afterwards (copying the loop-test block to
// the bottom so that a second scheduling pass achieves a partial software
// pipelining effect), and the driver that sequences unroll → schedule →
// rotate → schedule → local pass.
package xform

import (
	"fmt"

	"gsched/internal/cfg"
	"gsched/internal/ir"
)

// labelCounter generates fresh labels per function.
type labelCounter struct {
	f *ir.Func
	n int
}

func (lc *labelCounter) fresh(prefix string) string {
	for {
		lc.n++
		l := fmt.Sprintf("%s.%d", prefix, lc.n)
		if lc.f.BlockByLabel(l) == nil {
			return l
		}
	}
}

// ensureLabel gives b a label if it has none.
func (lc *labelCounter) ensureLabel(b *ir.Block) string {
	if b.Label == "" {
		b.Label = lc.fresh("XL")
	}
	return b.Label
}

// UnrollOnce duplicates the body of the loop region r so the loop covers
// two original iterations per trip (the paper unrolls inner loops of up
// to 4 basic blocks once, §6). All exit tests are kept, so the
// transformation is valid for any trip count. It returns false without
// changing f when the loop shape is unsupported (non-contiguous layout,
// fallthrough back edge, or a region that is not a loop).
func UnrollOnce(f *ir.Func, g *cfg.Graph, li *cfg.LoopInfo, r *cfg.Region) bool {
	if !r.IsLoop {
		return false
	}
	// The loop blocks must be contiguous in layout so the clone can be
	// placed right after them with fallthroughs preserved.
	lo, hi := r.Blocks[0], r.Blocks[len(r.Blocks)-1]
	if hi-lo+1 != len(r.Blocks) {
		return false
	}
	// Every back edge must be an explicit branch to the header.
	header := f.Blocks[r.Header]
	for _, u := range r.Blocks {
		if li.IsBackEdge(u, r.Header) {
			t := f.Blocks[u].Terminator()
			if t == nil || !t.Op.IsBranch() || t.Target != header.Label {
				return false
			}
		}
	}
	if header.Label == "" {
		return false
	}
	lc := &labelCounter{f: f}

	// Make sure fallthrough exits of the last loop block survive the
	// insertion of clones after it: if the last loop block can fall
	// through (no terminator or a conditional branch), the block after
	// the loop must be reachable by an explicit jump from the clone
	// instead; the original keeps falling through to the clone? No —
	// the clone of the last block sits right before the after-loop
	// block, so its fallthrough lands correctly; it is the ORIGINAL
	// last block whose fallthrough now hits the clone of the first
	// block. Guard: the original last block must not fall through.
	last := f.Blocks[hi]
	if t := last.Terminator(); t == nil || t.Op == ir.OpBC {
		// It falls through out of the loop (a conditional back edge
		// falls through to the exit, like Figure 2's BL10). After
		// cloning, its fallthrough must skip the clones: insert an
		// explicit branch to the current fallthrough target.
		if hi+1 >= len(f.Blocks) {
			return false
		}
		after := f.Blocks[hi+1]
		b := f.NewInstr(ir.OpB)
		b.Target = lc.ensureLabel(after)
		// The branch lives in a tiny new block appended between the
		// loop and the clones, so the conditional terminator of the
		// last block stays a terminator.
		jb := &ir.Block{Label: "", Instrs: []*ir.Instr{b}}
		insertBlocks(f, hi+1, []*ir.Block{jb})
		hi++
	}

	// Clone the loop blocks.
	cloneLabel := make(map[string]string)
	for _, bi := range r.Blocks {
		b := f.Blocks[bi]
		if b.Label != "" {
			cloneLabel[b.Label] = lc.fresh(b.Label + ".u")
		}
	}
	inLoop := make(map[int]bool)
	for _, bi := range r.Blocks {
		inLoop[bi] = true
	}
	var clones []*ir.Block
	for _, bi := range r.Blocks {
		b := f.Blocks[bi]
		nb := &ir.Block{Label: cloneLabel[b.Label]}
		for _, i := range b.Instrs {
			ci := f.CloneInstr(i)
			if ci.Op.IsBranch() {
				if nl, ok := cloneLabel[ci.Target]; ok {
					// Intra-loop target: to the cloned copy — except
					// the back edge, which returns to the original
					// header (completing the two-iteration cycle).
					if ci.Target == header.Label && li.IsBackEdge(bi, r.Header) {
						// keep original header target
					} else {
						ci.Target = nl
					}
				}
			}
			nb.Instrs = append(nb.Instrs, ci)
		}
		clones = append(clones, nb)
	}
	// Original back edges now continue into the clone of the header.
	for _, u := range r.Blocks {
		if li.IsBackEdge(u, r.Header) {
			t := f.Blocks[u].Terminator()
			t.Target = cloneLabel[header.Label]
		}
	}
	insertBlocks(f, hi+1, clones)
	return true
}

// insertBlocks splices blocks into f.Blocks at index at and reindexes.
func insertBlocks(f *ir.Func, at int, blocks []*ir.Block) {
	f.Blocks = append(f.Blocks[:at], append(blocks, f.Blocks[at:]...)...)
	f.ReindexBlocks()
}
