package xform

import (
	"gsched/internal/cfg"
	"gsched/internal/ir"
)

// CounterLoops converts eligible counted loops to use the machine's
// counter register: the RS/6000 closes such loops with a single
// decrement-and-branch (BCT), removing the add/compare pair and the
// three-cycle compare-to-branch delay. The paper's footnote 3 describes
// the feature and notes it was disabled for the Figure 2 example; this
// pass (and the -fig counter experiment) measures what it gives back.
//
// A loop qualifies when, conservatively:
//
//   - it has a single back edge from a latch ending
//     "AI i=i,step; C cr=i,n; BT header,cr,lt" with positive power-of-two
//     step, cr used only by that branch;
//   - the induction register i is pure loop control: inside the loop it
//     is touched only by that AI/C pair;
//   - n is not redefined inside the loop;
//   - the loop header's only other predecessor is a guard block ending
//     "C cr2=i,n; BF exit,cr2,lt", proving i < n on entry, so the trip
//     count ceil((n-i)/step) is at least one (BCT loops always execute
//     once).
//
// Returns the number of loops converted.
func CounterLoops(f *ir.Func) int {
	converted := 0
	for {
		g := cfg.Build(f)
		li := cfg.FindLoops(g)
		if li.Irreducible {
			return converted
		}
		done := false
		li.Root.Walk(func(r *cfg.Region) {
			if done || !r.IsLoop || !r.IsInner() {
				return
			}
			if convertCounterLoop(f, g, li, r) {
				done = true
				converted++
			}
		})
		if !done {
			return converted
		}
	}
}

// CounterLoopsProgram applies CounterLoops to every function.
func CounterLoopsProgram(p *ir.Program) int {
	n := 0
	for _, f := range p.Funcs {
		n += CounterLoops(f)
	}
	return n
}

func convertCounterLoop(f *ir.Func, g *cfg.Graph, li *cfg.LoopInfo, r *cfg.Region) bool {
	header := f.Blocks[r.Header]
	if header.Label == "" {
		return false
	}
	inLoop := make(map[int]bool)
	for _, b := range r.Blocks {
		inLoop[b] = true
	}

	// Single back edge from a latch with the AI/C/BT tail.
	latch := -1
	var guardBlock *ir.Block
	for _, p := range g.Preds[r.Header] {
		if li.IsBackEdge(p, r.Header) {
			if latch >= 0 {
				return false
			}
			latch = p
		} else {
			if guardBlock != nil {
				return false
			}
			guardBlock = f.Blocks[p]
		}
	}
	if latch < 0 || guardBlock == nil {
		return false
	}
	lb := f.Blocks[latch]
	n := len(lb.Instrs)
	if n < 3 {
		return false
	}
	ai, cmp, bt := lb.Instrs[n-3], lb.Instrs[n-2], lb.Instrs[n-1]
	if ai.Op != ir.OpAddI || ai.Def != ai.A || ai.Imm <= 0 {
		return false
	}
	step := ai.Imm
	if step&(step-1) != 0 {
		return false // need a power of two for the shift below
	}
	if cmp.Op != ir.OpCmp || cmp.A != ai.Def {
		return false
	}
	iReg, nReg, cr := ai.Def, cmp.B, cmp.Def
	if bt.Op != ir.OpBC || !bt.OnTrue || bt.CRBit != ir.BitLT || bt.A != cr || bt.Target != header.Label {
		return false
	}

	// The guard proves i < n on entry: "C cr2=i,n; ...; BF exit,cr2,lt"
	// with the BF leaving the loop.
	gt := guardBlock.Terminator()
	if gt == nil || gt.Op != ir.OpBC || gt.OnTrue || gt.CRBit != ir.BitLT {
		return false
	}
	if tgt := f.BlockByLabel(gt.Target); tgt == nil || inLoop[tgt.Index] {
		return false
	}
	guardOK := false
	for _, i := range guardBlock.Instrs {
		if i.Op == ir.OpCmp && i.Def == gt.A && i.A == iReg && i.B == nReg {
			guardOK = true
		}
		if i != gt && i.DefsReg(gt.A) && i.Op != ir.OpCmp {
			guardOK = false
		}
	}
	if !guardOK {
		return false
	}

	// i is pure loop control inside the loop; cr feeds only the branch;
	// n is loop-invariant.
	ok := true
	for _, bi := range r.Blocks {
		for _, i := range f.Blocks[bi].Instrs {
			if i == ai || i == cmp || i == bt {
				continue
			}
			if i.UsesReg(iReg) || i.DefsReg(iReg) || i.DefsReg(nReg) || i.UsesReg(cr) || i.DefsReg(cr) {
				ok = false
			}
		}
	}
	if !ok {
		return false
	}
	// Neither cr nor the induction register may be consumed after the
	// loop (i stops being updated once the counter takes over).
	// Conservative: no use anywhere outside the loop and guard.
	f.Instrs(func(b *ir.Block, i *ir.Instr) {
		if inLoop[b.Index] || b == guardBlock {
			return
		}
		if i.UsesReg(cr) || i.UsesReg(iReg) {
			ok = false
		}
	})
	if !ok {
		return false
	}

	// Build the preheader computing ctr = (n - i + step - 1) >> log2(step).
	lc := &labelCounter{f: f}
	shift := int64(0)
	for s := step; s > 1; s >>= 1 {
		shift++
	}
	t := f.NewReg(ir.ClassGPR)
	ctr := f.NewReg(ir.ClassGPR)
	pre := &ir.Block{Label: lc.fresh(header.Label + ".ctr")}
	sub := f.NewInstr(ir.OpSub)
	sub.Def, sub.A, sub.B = t, nReg, iReg
	pre.Instrs = append(pre.Instrs, sub)
	if step > 1 {
		adj := f.NewInstr(ir.OpAddI)
		adj.Def, adj.A, adj.Imm = t, t, step-1
		sh := f.NewInstr(ir.OpShrI)
		sh.Def, sh.A, sh.Imm = ctr, t, shift
		pre.Instrs = append(pre.Instrs, adj, sh)
	} else {
		mv := f.NewInstr(ir.OpLR)
		mv.Def, mv.A = ctr, t
		pre.Instrs = append(pre.Instrs, mv)
	}
	// The guard falls through to the header (it cannot branch to it:
	// its taken edge leaves the loop), so inserting the preheader
	// between them preserves control flow.
	insertBlocks(f, header.Index, []*ir.Block{pre})

	// Rewrite the latch: drop AI and C, replace BT with BCT.
	lb.Remove(ai)
	lb.Remove(cmp)
	bct := f.NewInstr(ir.OpBCT)
	bct.Target = header.Label
	bct.A, bct.Def = ctr, ctr
	lb.Instrs[len(lb.Instrs)-1] = bct
	return true
}
