package xform

import (
	"testing"

	"gsched/internal/asm"
	"gsched/internal/core"
	"gsched/internal/ir"
	"gsched/internal/machine"
	"gsched/internal/minic"
	"gsched/internal/profile"
	"gsched/internal/sim"
)

// hotIfSrc has a join block fed by a heavily biased branch: the `if`
// arm almost never runs, so nearly every execution flows from the test
// straight into the code after the if — a side entrance the superblock
// former should remove by tail duplication.
const hotIfSrc = `
int acc = 0;
int f(int n) {
    for (int i = 0; i < n; i++) {
        if (i == 1) {
            acc += 1000;
        }
        acc += i;
        acc = acc ^ 3;
    }
    return acc;
}
`

// trainProfile compiles src, runs entry(args) functionally, and returns
// the program's edge profile.
func trainProfile(t *testing.T, src, entry string, args []int64) *profile.Profile {
	t.Helper()
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prof := profile.New()
	m, err := sim.Load(prog)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := m.Run(entry, args, nil, sim.Options{Profile: prof}); err != nil {
		t.Fatalf("training run: %v", err)
	}
	return prof
}

func TestFormSuperblocksDuplicatesHotJoin(t *testing.T) {
	prof := trainProfile(t, hotIfSrc, "f", []int64{100})

	prog, err := minic.Compile(hotIfSrc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Load(prog)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Run("f", []int64{100}, nil, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}

	f := prog.Func("f")
	before := len(f.Blocks)
	formed := FormSuperblocks(f, prof, DefaultSuperblock())
	if formed < 1 {
		t.Fatalf("FormSuperblocks = %d, want >= 1 on the biased if\n%s", formed, f)
	}
	if len(f.Blocks) <= before {
		t.Fatalf("no blocks added: %d -> %d", before, len(f.Blocks))
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("invalid ir after tail duplication: %v\n%s", err, f)
	}
	m2, err := sim.Load(prog)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m2.Run("f", []int64{100}, nil, sim.Options{})
	if err != nil {
		t.Fatalf("run after duplication: %v\n%s", err, f)
	}
	if got.Ret != want.Ret {
		t.Fatalf("behaviour changed: ret %d, want %d\n%s", got.Ret, want.Ret, f)
	}
}

func TestFormSuperblocksGates(t *testing.T) {
	// No profile, or an empty one: nothing happens.
	prog, err := minic.Compile(hotIfSrc)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("f")
	if n := FormSuperblocks(f, nil, DefaultSuperblock()); n != 0 {
		t.Errorf("nil profile: formed %d", n)
	}
	if n := FormSuperblocks(f, profile.New(), DefaultSuperblock()); n != 0 {
		t.Errorf("empty profile: formed %d", n)
	}

	// A balanced branch (roughly 50/50) never clears MinProb.
	balanced := `
int acc = 0;
int f(int n) {
    for (int i = 0; i < n; i++) {
        if (i - (i / 2) * 2 == 0) {
            acc += 7;
        }
        acc += i;
    }
    return acc;
}
`
	prof := trainProfile(t, balanced, "f", []int64{100})
	prog2, err := minic.Compile(balanced)
	if err != nil {
		t.Fatal(err)
	}
	if n := FormSuperblocks(prog2.Func("f"), prof, DefaultSuperblock()); n != 0 {
		t.Errorf("balanced branch: formed %d, want 0", n)
	}

	// A branch executed fewer than MinCount times carries no signal.
	prof2 := trainProfile(t, hotIfSrc, "f", []int64{3})
	prog3, err := minic.Compile(hotIfSrc)
	if err != nil {
		t.Fatal(err)
	}
	if n := FormSuperblocks(prog3.Func("f"), prof2, DefaultSuperblock()); n != 0 {
		t.Errorf("cold branch: formed %d, want 0", n)
	}
}

// TestFormSuperblocksSkipsLoopHeaders pins the reducibility guard: a
// hot conditional edge into a loop header must not be duplicated, else
// the loop gains a second entry and §6 region scheduling degrades.
func TestFormSuperblocksSkipsLoopHeaders(t *testing.T) {
	f := ir.NewFunc("g")
	n := ir.GPR(1)
	f.Params = []ir.Reg{n}
	s, i := ir.GPR(2), ir.GPR(3)
	cr := ir.CR(0)
	b := ir.NewBuilder(f)

	b.Block("entry")
	b.LI(s, 0)
	b.LI(i, 0)

	// Loop header H: two predecessors (entry fallthrough, latch branch).
	b.Block("H")
	b.Op2(ir.OpAdd, s, s, i)
	b.AI(i, i, 1)
	b.Cmp(cr, i, n)
	b.BF("exit", cr, ir.BitLT) // hot edge while the loop spins: back to latch

	b.Block("latch")
	b.B("H")

	b.Block("exit")
	b.Ret(s)

	f.ReindexBlocks()
	p := ir.NewProgram()
	p.AddFunc(f)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	// Hand-build a profile claiming H's exit test almost never exits:
	// the hot arm is the fallthrough into the latch, whose only job is
	// the back edge to H. Neither the back edge nor H may be duplicated.
	prof := profile.New()
	t1 := f.Blocks[1].Terminator()
	for k := 0; k < 100; k++ {
		prof.Record("g", t1.ID, false)
	}
	if nfo := FormSuperblocksCountOnly(f, prof); nfo != 0 {
		t.Errorf("loop header duplicated %d times, want 0\n%s", nfo, f)
	}
}

// FormSuperblocksCountOnly is a test shim running the former with
// default thresholds but MinCount 1.
func FormSuperblocksCountOnly(f *ir.Func, prof *profile.Profile) int {
	scfg := DefaultSuperblock()
	scfg.MinCount = 1
	return FormSuperblocks(f, prof, scfg)
}

// TestLevelDupPipelineWithProfile runs the full §6 pipeline at
// level=dup with a trained profile and the legality verifier enabled:
// superblocks form, the schedule stays legal, and behaviour is
// unchanged.
func TestLevelDupPipelineWithProfile(t *testing.T) {
	prof := trainProfile(t, hotIfSrc, "f", []int64{100})

	base, err := minic.Compile(hotIfSrc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Load(base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Run("f", []int64{100}, nil, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}

	prog, err := minic.Compile(hotIfSrc)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Defaults(machine.RS6K(), core.LevelDup)
	opts.Profile = prof
	opts.Verify = true
	st, err := RunProgram(prog, opts, DefaultConfig())
	if err != nil {
		t.Fatalf("level=dup pipeline: %v", err)
	}
	if st.TailDuplicated < 1 {
		t.Errorf("TailDuplicated = %d, want >= 1", st.TailDuplicated)
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("invalid ir after pipeline: %v", err)
	}
	m2, err := sim.Load(prog)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m2.Run("f", []int64{100}, nil, sim.Options{
		Machine: machine.RS6K(), ForgivingLoads: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Ret != want.Ret {
		t.Fatalf("behaviour changed: ret %d, want %d", got.Ret, want.Ret)
	}
}

func TestFormSuperblocksDeterministic(t *testing.T) {
	prof := trainProfile(t, hotIfSrc, "f", []int64{100})
	render := func() string {
		prog, err := minic.Compile(hotIfSrc)
		if err != nil {
			t.Fatal(err)
		}
		FormSuperblocks(prog.Func("f"), prof, DefaultSuperblock())
		return asm.Print(prog)
	}
	if a, b := render(), render(); a != b {
		t.Errorf("tail duplication is not deterministic:\n%s\nvs\n%s", a, b)
	}
}
