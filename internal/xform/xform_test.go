package xform

import (
	"testing"

	"gsched/internal/cfg"
	"gsched/internal/core"
	"gsched/internal/ir"
	"gsched/internal/machine"
	"gsched/internal/paperex"
	"gsched/internal/sim"
)

// sumProgram builds a canonical top-test while loop:
//
//	sum(n) { s=0; for (off=0; off<4n; off+=4) s += a[off/4]; return s }
//
// The loop has two blocks (test header + body/latch), so it is eligible
// for both unrolling and rotation.
func sumProgram() (*ir.Program, *ir.Func) {
	p := ir.NewProgram()
	p.AddSym("a", 1024)
	f := ir.NewFunc("sum")
	n := ir.GPR(1)
	f.Params = []ir.Reg{n}
	s, off, nb, x := ir.GPR(2), ir.GPR(3), ir.GPR(4), ir.GPR(5)
	cr := ir.CR(0)
	b := ir.NewBuilder(f)

	b.Block("entry")
	b.LI(s, 0)
	b.LI(off, 0)
	b.OpI(ir.OpShlI, nb, n, 2)

	b.Block("H")
	b.Cmp(cr, off, nb)
	b.BF("exit", cr, ir.BitLT)

	b.Block("body")
	b.Load(x, "a", off, 0)
	b.Op2(ir.OpAdd, s, s, x)
	b.AI(off, off, 4)
	b.B("H")

	b.Block("exit")
	b.Ret(s)

	f.ReindexBlocks()
	p.AddFunc(f)
	return p, f
}

func runSum(t *testing.T, p *ir.Program, n int64, data []int64) int64 {
	t.Helper()
	m, err := sim.Load(p)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	res, err := m.Run("sum", []int64{n}, map[string][]int64{"a": data}, sim.Options{Machine: machine.RS6K()})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res.Ret
}

func sumData(n int) (data []int64, want int64) {
	for i := 0; i < n; i++ {
		v := int64(i*3 - 7)
		data = append(data, v)
		want += v
	}
	return data, want
}

func innerLoop(t *testing.T, f *ir.Func) (*cfg.Graph, *cfg.LoopInfo, *cfg.Region) {
	t.Helper()
	g := cfg.Build(f)
	li := cfg.FindLoops(g)
	var target *cfg.Region
	li.Root.Walk(func(r *cfg.Region) {
		if target == nil && r.IsLoop && r.IsInner() {
			target = r
		}
	})
	if target == nil {
		t.Fatal("no inner loop found")
	}
	return g, li, target
}

func TestUnrollOncePreservesSemantics(t *testing.T) {
	for _, n := range []int64{0, 1, 2, 3, 7, 10} {
		p, f := sumProgram()
		g, li, r := innerLoop(t, f)
		origBlocks := len(f.Blocks)
		if !UnrollOnce(f, g, li, r) {
			t.Fatal("UnrollOnce refused the sum loop")
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("invalid after unroll: %v\n%s", err, f)
		}
		if len(f.Blocks) <= origBlocks {
			t.Fatal("unroll added no blocks")
		}
		data, want := sumData(int(n))
		if n == 0 {
			data = []int64{0}
		}
		if got := runSum(t, p, n, data); got != want {
			t.Errorf("n=%d: sum=%d want %d after unroll\n%s", n, got, want, f)
		}
	}
}

func TestUnrolledLoopIsStillALoop(t *testing.T) {
	_, f := sumProgram()
	g, li, r := innerLoop(t, f)
	if !UnrollOnce(f, g, li, r) {
		t.Fatal("unroll refused")
	}
	g2 := cfg.Build(f)
	li2 := cfg.FindLoops(g2)
	if li2.Irreducible {
		t.Fatal("unrolled function is irreducible")
	}
	_, _, r2 := innerLoop(t, f)
	if len(r2.Blocks) != 2*len(r.Blocks) {
		t.Errorf("unrolled loop has %d blocks, want %d", len(r2.Blocks), 2*len(r.Blocks))
	}
}

func TestRotatePreservesSemantics(t *testing.T) {
	for _, n := range []int64{0, 1, 2, 5, 9} {
		p, f := sumProgram()
		g, li, r := innerLoop(t, f)
		if !Rotate(f, g, li, r) {
			t.Fatal("Rotate refused the sum loop")
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("invalid after rotate: %v\n%s", err, f)
		}
		data, want := sumData(int(n))
		if n == 0 {
			data = []int64{0}
		}
		if got := runSum(t, p, n, data); got != want {
			t.Errorf("n=%d: sum=%d want %d after rotate\n%s", n, got, want, f)
		}
	}
}

func TestRotateRefusesBottomTestLoop(t *testing.T) {
	// The minmax loop's header has both successors inside the loop.
	_, f := paperex.MinMax()
	g, li, r := innerLoop(t, f)
	if Rotate(f, g, li, r) {
		t.Fatal("Rotate should refuse the minmax (bottom-test) loop")
	}
}

func TestDriverFullPipeline(t *testing.T) {
	for _, level := range []core.Level{core.LevelNone, core.LevelUseful, core.LevelSpeculative} {
		p, f := sumProgram()
		st, err := Run(f, core.Defaults(machine.RS6K(), level), DefaultConfig())
		if err != nil {
			t.Fatalf("level=%s: %v", level, err)
		}
		if level > core.LevelNone {
			if st.LoopsUnrolled == 0 {
				t.Errorf("level=%s: expected the sum loop to be unrolled", level)
			}
			if st.LoopsRotated == 0 {
				t.Errorf("level=%s: expected the unrolled sum loop to be rotated", level)
			}
		}
		data, want := sumData(11)
		if got := runSum(t, p, 11, data); got != want {
			t.Errorf("level=%s: sum=%d want %d\n%s", level, got, want, f)
		}
	}
}

func TestDriverOnMinMax(t *testing.T) {
	// The 10-block minmax loop exceeds the 4-block unroll/rotate caps,
	// but the driver must still schedule it globally.
	p, f := paperex.MinMax()
	st, err := Run(f, core.Defaults(machine.RS6K(), core.LevelSpeculative), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.LoopsUnrolled != 0 || st.LoopsRotated != 0 {
		t.Errorf("minmax loop should be too large for unroll/rotate: %+v", st)
	}
	if st.UsefulMoves == 0 {
		t.Error("driver performed no global motion")
	}
	m, err := sim.Load(p)
	if err != nil {
		t.Fatal(err)
	}
	a := []int64{5, 9, -2, 3, 14, 7, 0, 11, 6}
	res, err := m.Run("minmax", []int64{int64(len(a))}, map[string][]int64{"a": a}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != -2 {
		t.Errorf("minmax ret = %d, want -2", res.Ret)
	}
}

// TestPipeliningEffect measures that unroll+rotate+reschedule does not
// slow the sum loop down and typically speeds it up per element.
func TestPipeliningEffect(t *testing.T) {
	cycles := func(withXform bool) int64 {
		p, f := sumProgram()
		opts := core.Defaults(machine.RS6K(), core.LevelSpeculative)
		if withXform {
			if _, err := Run(f, opts, DefaultConfig()); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := core.ScheduleFunc(f, opts); err != nil {
				t.Fatal(err)
			}
		}
		m, err := sim.Load(p)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := sumData(256)
		res, err := m.Run("sum", []int64{256}, map[string][]int64{"a": data}, sim.Options{Machine: machine.RS6K()})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	plain := cycles(false)
	piped := cycles(true)
	t.Logf("sum of 256: plain=%d cycles, unroll+rotate=%d cycles", plain, piped)
	if piped > plain {
		t.Errorf("pipeline made it slower: %d > %d", piped, plain)
	}
}
