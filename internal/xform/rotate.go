package xform

import (
	"gsched/internal/cfg"
	"gsched/internal/ir"
)

// Rotate performs the paper's loop rotation (§6): the first basic block
// of a small inner loop is copied after the end of the loop, turning a
// top-test loop into a bottom-test one whose body begins with the old
// body. Applying global scheduling a second time to the rotated loop
// achieves a partial software pipelining effect — instructions of the
// next iteration (the copied test block typically contains the loads and
// the exit compare) are executed within the body of the previous one.
//
// Eligibility: the region is a loop whose header ends in a conditional
// branch with exactly one successor inside the loop and one outside, the
// loop is contiguous in layout, and all back edges branch explicitly to
// the header. Returns false without modifying f otherwise.
func Rotate(f *ir.Func, g *cfg.Graph, li *cfg.LoopInfo, r *cfg.Region) bool {
	if !r.IsLoop || len(r.Blocks) < 2 {
		return false
	}
	lo, hi := r.Blocks[0], r.Blocks[len(r.Blocks)-1]
	if hi-lo+1 != len(r.Blocks) {
		return false
	}
	header := f.Blocks[r.Header]
	term := header.Terminator()
	if term == nil || term.Op != ir.OpBC {
		return false
	}
	inLoop := make(map[int]bool)
	for _, bi := range r.Blocks {
		inLoop[bi] = true
	}
	succs := ir.Succs(f, header)
	if len(succs) != 2 {
		return false
	}
	var bodyFirst, exit *ir.Block
	for _, s := range succs {
		if inLoop[s.Index] {
			if bodyFirst != nil {
				return false // both successors inside: bottom-test loop
			}
			bodyFirst = s
		} else {
			exit = s
		}
	}
	if bodyFirst == nil || exit == nil {
		return false
	}
	// The in-loop successor must be the fallthrough (header branches out
	// on exit); the common while-loop shape. The other orientation
	// (header branches into the loop) would need an inverted copy.
	if f.BlockByLabel(term.Target) != exit {
		return false
	}
	// All back edges must branch explicitly to the header.
	for _, u := range r.Blocks {
		if li.IsBackEdge(u, r.Header) {
			t := f.Blocks[u].Terminator()
			if t == nil || !t.Op.IsBranch() || t.Target != header.Label {
				return false
			}
		}
	}
	// The last loop block's fallthrough (if any) must have somewhere to
	// land once H' is spliced in after it; check before mutating
	// anything so a refusal leaves f untouched.
	if t := f.Blocks[hi].Terminator(); t == nil || t.Op == ir.OpBC {
		if hi+1 >= len(f.Blocks) {
			return false
		}
	}
	lc := &labelCounter{f: f}
	bodyLabel := lc.ensureLabel(bodyFirst)
	exitLabel := lc.ensureLabel(exit)

	// Build the rotated copy H': the header's instructions with the
	// branch sense inverted — branch back to the body while the loop
	// continues, fall through to the exit.
	rot := &ir.Block{Label: lc.fresh(header.Label + ".rot")}
	for _, i := range header.Instrs {
		ci := f.CloneInstr(i)
		if ci == nil {
			return false
		}
		rot.Instrs = append(rot.Instrs, ci)
	}
	rt := rot.Instrs[len(rot.Instrs)-1]
	rt.OnTrue = !rt.OnTrue
	rt.Target = bodyLabel

	// Back edges now reach the rotated copy.
	for _, u := range r.Blocks {
		if li.IsBackEdge(u, r.Header) {
			f.Blocks[u].Terminator().Target = rot.Label
		}
	}

	// Place H' after the last loop block. If that block can fall
	// through, its fallthrough semantics must be preserved with an
	// explicit jump around H'.
	at := hi + 1
	last := f.Blocks[hi]
	if t := last.Terminator(); t == nil || t.Op == ir.OpBC {
		if hi+1 >= len(f.Blocks) {
			return false
		}
		after := f.Blocks[hi+1]
		jb := &ir.Block{}
		j := f.NewInstr(ir.OpB)
		j.Target = lc.ensureLabel(after)
		jb.Instrs = []*ir.Instr{j}
		insertBlocks(f, at, []*ir.Block{jb})
		at++
	}
	// H' falls through past the end when placed last: give it an
	// explicit jump to the exit unless the exit directly follows.
	insertBlocks(f, at, []*ir.Block{rot})
	if at+1 >= len(f.Blocks) || f.Blocks[at+1] != exit {
		j := f.NewInstr(ir.OpB)
		j.Target = exitLabel
		jb := &ir.Block{Instrs: []*ir.Instr{j}}
		insertBlocks(f, at+1, []*ir.Block{jb})
	}
	return true
}
