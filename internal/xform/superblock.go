package xform

import (
	"gsched/internal/cfg"
	"gsched/internal/ir"
	"gsched/internal/profile"
)

// SuperblockConfig gates profile-driven superblock formation: hot join
// blocks are tail-duplicated so the frequent trace loses its side
// entrances and the scheduler's useful (0-branch) motion applies along
// it. This is the classic trace-straightening companion to the paper's
// Definition-6 duplication: Def-6 moves one instruction into all
// predecessors of a join; tail duplication instead copies the join
// itself onto the hot path, which turns the hot predecessor and the
// copy into equivalent blocks (Definition 4) and leaves the cold paths
// untouched.
type SuperblockConfig struct {
	// MinProb is the edge probability below which an arm is not
	// considered hot (a biased branch must send at least this fraction
	// of executions down the arm).
	MinProb float64
	// MinCount is the minimum number of recorded executions of the
	// branch; colder branches carry too little signal to gamble code
	// growth on.
	MinCount int64
	// MaxBlock is the largest join block (instruction count) that may
	// be duplicated.
	MaxBlock int
	// MaxGrowth caps the per-function instruction growth; 0 means
	// max(16, NumInstrs/4).
	MaxGrowth int
}

// DefaultSuperblock returns the thresholds the §6 pipeline uses at
// level=dup: duplicate joins of up to 16 instructions along edges taken
// at least 80% of the time and observed at least 8 times, growing each
// function by at most a quarter.
func DefaultSuperblock() SuperblockConfig {
	return SuperblockConfig{MinProb: 0.8, MinCount: 8, MaxBlock: 16}
}

// FormSuperblocks tail-duplicates hot join blocks of f according to the
// edge profile and returns the number of blocks duplicated. Legality is
// structural: each duplicated block keeps its instructions and its
// successor edges, so every execution path still runs the join exactly
// once (through the original or the copy). Formation is skipped for
// back edges and loop headers — duplicating those would destroy the
// reducible region structure §6 schedules — and stops at the growth
// cap. The transformation is deterministic: blocks are scanned in
// layout order and the analyses are rebuilt after every duplication.
func FormSuperblocks(f *ir.Func, prof *profile.Profile, scfg SuperblockConfig) int {
	if prof == nil || prof.Len() == 0 || len(f.Blocks) < 2 {
		return 0
	}
	if scfg.MinProb <= 0 || scfg.MinProb > 1 {
		scfg.MinProb = 0.8
	}
	if scfg.MinCount <= 0 {
		scfg.MinCount = 8
	}
	if scfg.MaxBlock <= 0 {
		scfg.MaxBlock = 16
	}
	budget := scfg.MaxGrowth
	if budget <= 0 {
		budget = f.NumInstrs() / 4
		if budget < 16 {
			budget = 16
		}
	}
	formed := 0
	for budget > 0 {
		if !tailDuplicateOne(f, prof, scfg, &budget) {
			break
		}
		formed++
	}
	return formed
}

// tailDuplicateOne finds the first hot conditional edge into a join
// block that passes every gate, duplicates the join onto that edge, and
// reports whether anything changed. One duplication per call keeps the
// flow analyses honest: the caller re-enters with freshly built graphs.
func tailDuplicateOne(f *ir.Func, prof *profile.Profile, scfg SuperblockConfig, budget *int) bool {
	g := cfg.Build(f)
	li := cfg.FindLoops(g)
	if li.Irreducible {
		return false
	}
	byLabel := make(map[string]int, len(f.Blocks))
	for i, b := range f.Blocks {
		if b.Label != "" {
			byLabel[b.Label] = i
		}
	}
	isLoopHeader := func(b int) bool {
		for _, p := range g.Preds[b] {
			if li.IsBackEdge(p, b) {
				return true
			}
		}
		return false
	}
	for u, ub := range f.Blocks {
		t := ub.Terminator()
		if t == nil || t.Op != ir.OpBC {
			continue
		}
		c := prof.Branch(f.Name, t.ID)
		if c.Total() < scfg.MinCount {
			continue
		}
		p := c.TakenProb()
		// The hot arm: the explicit target when taken dominates, the
		// fallthrough when not-taken dominates.
		var b int
		var viaTarget bool
		switch {
		case p >= scfg.MinProb:
			tgt, ok := byLabel[t.Target]
			if !ok {
				continue
			}
			b, viaTarget = tgt, true
		case 1-p >= scfg.MinProb:
			if u+1 >= len(f.Blocks) {
				continue
			}
			b, viaTarget = u+1, false
		default:
			continue
		}
		if b == u || b == 0 || len(g.Preds[b]) < 2 {
			continue // not a join, or a self-loop, or the entry
		}
		if li.IsBackEdge(u, b) || isLoopHeader(b) {
			continue // keep the region structure reducible
		}
		jb := f.Blocks[b]
		if len(jb.Instrs) > scfg.MaxBlock || len(jb.Instrs) > *budget {
			continue
		}
		duplicateJoin(f, u, b, viaTarget)
		*budget -= len(jb.Instrs)
		return true
	}
	return false
}

// duplicateJoin clones block b onto the edge u->b. When the edge is u's
// explicit branch target the clone (plus a fallthrough-fixing jump
// block when b can fall through) is appended at the end of the function
// — safe because validated functions never fall off the end — and u is
// retargeted to the clone's fresh label. When the edge is u's
// fallthrough the clone is spliced in directly after u, intercepting
// exactly that edge; the shifted original keeps its label for every
// other predecessor.
func duplicateJoin(f *ir.Func, u, b int, viaTarget bool) {
	lc := &labelCounter{f: f}
	jb := f.Blocks[b]

	// Resolve b's own fallthrough before any splicing shifts indexes.
	fallLabel := ""
	if t := jb.Terminator(); t == nil || t.Op == ir.OpBC || t.Op == ir.OpBCT {
		fallLabel = lc.ensureLabel(f.Blocks[b+1])
	}

	clone := &ir.Block{}
	if viaTarget {
		clone.Label = lc.fresh(lc.ensureLabel(jb) + ".sb")
	}
	for _, i := range jb.Instrs {
		clone.Instrs = append(clone.Instrs, f.CloneInstr(i))
	}
	blocks := []*ir.Block{clone}
	if fallLabel != "" {
		if clone.Terminator() == nil {
			// Pure fallthrough: give the clone an explicit jump.
			j := f.NewInstr(ir.OpB)
			j.Target = fallLabel
			clone.Instrs = append(clone.Instrs, j)
		} else {
			// Conditional terminator: the clone falls through into a
			// fresh jump block that lands on b's fallthrough successor.
			j := f.NewInstr(ir.OpB)
			j.Target = fallLabel
			blocks = append(blocks, &ir.Block{Instrs: []*ir.Instr{j}})
		}
	}
	if viaTarget {
		f.Blocks[u].Terminator().Target = clone.Label
		insertBlocks(f, len(f.Blocks), blocks)
	} else {
		insertBlocks(f, u+1, blocks)
	}
}
