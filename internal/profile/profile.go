// Package profile holds edge profiles: per-branch taken/not-taken
// counts gathered by the simulator. The paper points out (§1) that
// global scheduling "is capable of taking advantage of the branch
// probabilities, whenever available (e.g. computed by profiling)" — the
// scheduler consumes these profiles to avoid speculating into rarely
// executed blocks, and the superblock former (internal/xform) to pick
// hot traces for tail duplication.
//
// Profiles have a canonical text form so they can travel: one header
// line "gsched-profile v1", then one line per branch,
//
//	<func> <instrID> <taken> <notTaken>
//
// sorted by function name and instruction ID. Canonical and Parse round
// trip exactly; the serving daemon hashes the canonical form into its
// content-addressed cache keys.
package profile

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Key identifies one conditional branch instruction.
type Key struct {
	Func    string
	InstrID int
}

// Counts records the two outcomes of a branch.
type Counts struct {
	NotTaken int64
	Taken    int64
}

// Total returns the number of executions.
func (c Counts) Total() int64 { return c.NotTaken + c.Taken }

// TakenProb returns the empirical probability the branch is taken;
// branches never executed report 0.5 (no information).
func (c Counts) TakenProb() float64 {
	t := c.Total()
	if t == 0 {
		return 0.5
	}
	return float64(c.Taken) / float64(t)
}

// Profile maps branches to outcome counts.
type Profile struct {
	Edges map[Key]Counts
}

// New returns an empty profile.
func New() *Profile { return &Profile{Edges: make(map[Key]Counts)} }

// Record adds one observation.
func (p *Profile) Record(fn string, instrID int, taken bool) {
	k := Key{Func: fn, InstrID: instrID}
	c := p.Edges[k]
	if taken {
		c.Taken++
	} else {
		c.NotTaken++
	}
	p.Edges[k] = c
}

// Branch returns the counts for a branch (zero counts if never seen).
func (p *Profile) Branch(fn string, instrID int) Counts {
	if p == nil || p.Edges == nil {
		return Counts{}
	}
	return p.Edges[Key{Func: fn, InstrID: instrID}]
}

// Len returns the number of branches with recorded outcomes.
func (p *Profile) Len() int {
	if p == nil {
		return 0
	}
	return len(p.Edges)
}

// Merge adds every count of other into p.
func (p *Profile) Merge(other *Profile) {
	if other == nil {
		return
	}
	for k, c := range other.Edges {
		cur := p.Edges[k]
		cur.Taken += c.Taken
		cur.NotTaken += c.NotTaken
		p.Edges[k] = cur
	}
}

// Header is the first line of the canonical text form.
const Header = "gsched-profile v1"

// sortedKeys returns the branch keys in canonical order.
func (p *Profile) sortedKeys() []Key {
	keys := make([]Key, 0, len(p.Edges))
	for k := range p.Edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Func != keys[j].Func {
			return keys[i].Func < keys[j].Func
		}
		return keys[i].InstrID < keys[j].InstrID
	})
	return keys
}

// AppendCanonical appends the canonical text form to b and returns the
// extended slice. Equal profiles produce equal bytes, so the form is
// safe to hash into content-addressed cache keys.
func (p *Profile) AppendCanonical(b []byte) []byte {
	b = append(b, Header...)
	b = append(b, '\n')
	if p == nil {
		return b
	}
	for _, k := range p.sortedKeys() {
		c := p.Edges[k]
		b = append(b, k.Func...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, int64(k.InstrID), 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, c.Taken, 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, c.NotTaken, 10)
		b = append(b, '\n')
	}
	return b
}

// Canonical renders the canonical text form (see the package comment).
func (p *Profile) Canonical() string {
	return string(p.AppendCanonical(nil))
}

// Parse reads the canonical text form back into a Profile. It accepts
// exactly what Canonical emits, modulo blank lines, '#' comment lines,
// repeated keys (counts accumulate) and unsorted order; everything else
// is an error. Counts must be non-negative and totals must not
// overflow.
func Parse(src string) (*Profile, error) {
	lines := strings.Split(src, "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != Header {
		return nil, fmt.Errorf("profile: missing %q header", Header)
	}
	p := New()
	for ln, line := range lines[1:] {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("profile: line %d: want \"func instrID taken notTaken\", got %q", ln+2, line)
		}
		fn := fields[0]
		id, err := strconv.Atoi(fields[1])
		if err != nil || id < 0 {
			return nil, fmt.Errorf("profile: line %d: bad instruction id %q", ln+2, fields[1])
		}
		taken, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil || taken < 0 {
			return nil, fmt.Errorf("profile: line %d: bad taken count %q", ln+2, fields[2])
		}
		notTaken, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil || notTaken < 0 {
			return nil, fmt.Errorf("profile: line %d: bad not-taken count %q", ln+2, fields[3])
		}
		k := Key{Func: fn, InstrID: id}
		c := p.Edges[k]
		if c.Taken+taken < c.Taken || c.NotTaken+notTaken < c.NotTaken {
			return nil, fmt.Errorf("profile: line %d: count overflow for %s/%d", ln+2, fn, id)
		}
		c.Taken += taken
		c.NotTaken += notTaken
		p.Edges[k] = c
	}
	return p, nil
}

// String renders the profile sorted by function and instruction.
func (p *Profile) String() string {
	var sb strings.Builder
	for _, k := range p.sortedKeys() {
		c := p.Edges[k]
		fmt.Fprintf(&sb, "%s/%d: taken %d, not taken %d (p=%.2f)\n",
			k.Func, k.InstrID, c.Taken, c.NotTaken, c.TakenProb())
	}
	return sb.String()
}
