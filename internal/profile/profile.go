// Package profile holds edge profiles: per-branch taken/not-taken
// counts gathered by the simulator. The paper points out (§1) that
// global scheduling "is capable of taking advantage of the branch
// probabilities, whenever available (e.g. computed by profiling)" — the
// scheduler consumes these profiles to avoid speculating into rarely
// executed blocks.
package profile

import (
	"fmt"
	"sort"
	"strings"
)

// Key identifies one conditional branch instruction.
type Key struct {
	Func    string
	InstrID int
}

// Counts records the two outcomes of a branch.
type Counts struct {
	NotTaken int64
	Taken    int64
}

// Total returns the number of executions.
func (c Counts) Total() int64 { return c.NotTaken + c.Taken }

// TakenProb returns the empirical probability the branch is taken;
// branches never executed report 0.5 (no information).
func (c Counts) TakenProb() float64 {
	t := c.Total()
	if t == 0 {
		return 0.5
	}
	return float64(c.Taken) / float64(t)
}

// Profile maps branches to outcome counts.
type Profile struct {
	Edges map[Key]Counts
}

// New returns an empty profile.
func New() *Profile { return &Profile{Edges: make(map[Key]Counts)} }

// Record adds one observation.
func (p *Profile) Record(fn string, instrID int, taken bool) {
	k := Key{Func: fn, InstrID: instrID}
	c := p.Edges[k]
	if taken {
		c.Taken++
	} else {
		c.NotTaken++
	}
	p.Edges[k] = c
}

// Branch returns the counts for a branch (zero counts if never seen).
func (p *Profile) Branch(fn string, instrID int) Counts {
	if p == nil || p.Edges == nil {
		return Counts{}
	}
	return p.Edges[Key{Func: fn, InstrID: instrID}]
}

// String renders the profile sorted by function and instruction.
func (p *Profile) String() string {
	keys := make([]Key, 0, len(p.Edges))
	for k := range p.Edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Func != keys[j].Func {
			return keys[i].Func < keys[j].Func
		}
		return keys[i].InstrID < keys[j].InstrID
	})
	var sb strings.Builder
	for _, k := range keys {
		c := p.Edges[k]
		fmt.Fprintf(&sb, "%s/%d: taken %d, not taken %d (p=%.2f)\n",
			k.Func, k.InstrID, c.Taken, c.NotTaken, c.TakenProb())
	}
	return sb.String()
}
