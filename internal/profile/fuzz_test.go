package profile

import (
	"strings"
	"testing"
)

// FuzzProfile feeds arbitrary text to the profile parser. Parse must
// never panic: it either rejects the input or produces a profile whose
// canonical form re-parses to an identical profile (the round-trip
// fixpoint the serving daemon's cache keys rely on). Run with
//
//	go test -fuzz=FuzzProfile ./internal/profile
func FuzzProfile(f *testing.F) {
	f.Add(Header + "\n")
	f.Add(Header + "\nmain 3 10 2\nmain 9 0 7\n")
	f.Add(Header + "\n# comment\n\ndispatch 14 9223372036854775807 0\n")
	f.Add(Header + "\nf 1 2 3\nf 1 4 5\n") // repeated key accumulates
	f.Add("gsched-profile v2\nf 1 2 3\n")  // wrong version
	f.Add(Header + "\nf -1 2 3\n")
	f.Add(Header + "\nf 1 -2 3\nf")
	f.Add(strings.Repeat(Header+"\n", 3))
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return // rejecting the input is fine; panicking is not
		}
		canon := p.Canonical()
		q, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, canon)
		}
		if got := q.Canonical(); got != canon {
			t.Fatalf("canonicalization is not a fixpoint:\n%q\nvs\n%q", canon, got)
		}
		for k, c := range p.Edges {
			if q.Edges[k] != c {
				t.Fatalf("counts for %v changed across round trip: %+v vs %+v", k, c, q.Edges[k])
			}
		}
		if len(q.Edges) != len(p.Edges) {
			t.Fatalf("edge count changed across round trip: %d vs %d", len(p.Edges), len(q.Edges))
		}
	})
}
