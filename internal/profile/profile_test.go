package profile

import (
	"strings"
	"testing"
)

func TestCountsAndProbabilities(t *testing.T) {
	p := New()
	for k := 0; k < 30; k++ {
		p.Record("f", 7, true)
	}
	for k := 0; k < 10; k++ {
		p.Record("f", 7, false)
	}
	c := p.Branch("f", 7)
	if c.Taken != 30 || c.NotTaken != 10 || c.Total() != 40 {
		t.Errorf("counts = %+v", c)
	}
	if got := c.TakenProb(); got != 0.75 {
		t.Errorf("TakenProb = %v, want 0.75", got)
	}
	// Unknown branches are uninformative.
	if got := p.Branch("f", 99).TakenProb(); got != 0.5 {
		t.Errorf("unknown branch prob = %v, want 0.5", got)
	}
	if got := p.Branch("g", 7).TakenProb(); got != 0.5 {
		t.Errorf("other function prob = %v, want 0.5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var p *Profile
	if got := p.Branch("f", 1).TakenProb(); got != 0.5 {
		t.Errorf("nil profile prob = %v, want 0.5", got)
	}
}

func TestStringSorted(t *testing.T) {
	p := New()
	p.Record("b", 2, true)
	p.Record("a", 9, false)
	p.Record("a", 1, true)
	s := p.String()
	ia, ib := strings.Index(s, "a/1"), strings.Index(s, "b/2")
	i9 := strings.Index(s, "a/9")
	if !(ia >= 0 && i9 > ia && ib > i9) {
		t.Errorf("not sorted:\n%s", s)
	}
}
