package profile

import (
	"strings"
	"testing"
)

func TestCountsAndProbabilities(t *testing.T) {
	p := New()
	for k := 0; k < 30; k++ {
		p.Record("f", 7, true)
	}
	for k := 0; k < 10; k++ {
		p.Record("f", 7, false)
	}
	c := p.Branch("f", 7)
	if c.Taken != 30 || c.NotTaken != 10 || c.Total() != 40 {
		t.Errorf("counts = %+v", c)
	}
	if got := c.TakenProb(); got != 0.75 {
		t.Errorf("TakenProb = %v, want 0.75", got)
	}
	// Unknown branches are uninformative.
	if got := p.Branch("f", 99).TakenProb(); got != 0.5 {
		t.Errorf("unknown branch prob = %v, want 0.5", got)
	}
	if got := p.Branch("g", 7).TakenProb(); got != 0.5 {
		t.Errorf("other function prob = %v, want 0.5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var p *Profile
	if got := p.Branch("f", 1).TakenProb(); got != 0.5 {
		t.Errorf("nil profile prob = %v, want 0.5", got)
	}
}

func TestCanonicalParseRoundTrip(t *testing.T) {
	p := New()
	p.Record("b", 2, true)
	for k := 0; k < 5; k++ {
		p.Record("a", 9, false)
	}
	p.Record("a", 1, true)
	p.Record("a", 1, false)

	text := p.Canonical()
	if !strings.HasPrefix(text, Header+"\n") {
		t.Fatalf("canonical form missing header:\n%s", text)
	}
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse(Canonical()): %v", err)
	}
	if q.Canonical() != text {
		t.Errorf("round trip not identical:\n%s\nvs\n%s", text, q.Canonical())
	}
	if c := q.Branch("a", 9); c.NotTaken != 5 || c.Taken != 0 {
		t.Errorf("a/9 = %+v", c)
	}
}

func TestCanonicalDeterministic(t *testing.T) {
	build := func(order []int) string {
		p := New()
		for _, i := range order {
			p.Record("f", i, i%2 == 0)
		}
		return p.Canonical()
	}
	if a, b := build([]int{3, 1, 2}), build([]int{2, 3, 1}); a != b {
		t.Errorf("canonical form depends on insertion order:\n%s\nvs\n%s", a, b)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",                                  // no header
		"gsched-profile v2\n",               // wrong version
		Header + "\nf 1 2\n",                // short line
		Header + "\nf 1 2 3 4\n",            // long line
		Header + "\nf x 2 3\n",              // bad id
		Header + "\nf -1 2 3\n",             // negative id
		Header + "\nf 1 -2 3\n",             // negative taken
		Header + "\nf 1 2 -3\n",             // negative not-taken
		Header + "\nf 1 99999999999999999999 0\n", // overflow int64
		Header + "\nf 1 9223372036854775807 0\nf 1 1 0\n", // accumulate overflow
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted %q", src)
		}
	}
}

func TestParseAcceptsCommentsAndAccumulates(t *testing.T) {
	p, err := Parse(Header + "\n# comment\n\nf 1 2 3\nf 1 1 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if c := p.Branch("f", 1); c.Taken != 3 || c.NotTaken != 4 {
		t.Errorf("accumulated counts = %+v", c)
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.Record("f", 1, true)
	b.Record("f", 1, false)
	b.Record("g", 2, true)
	a.Merge(b)
	if c := a.Branch("f", 1); c.Taken != 1 || c.NotTaken != 1 {
		t.Errorf("f/1 = %+v", c)
	}
	if c := a.Branch("g", 2); c.Taken != 1 {
		t.Errorf("g/2 = %+v", c)
	}
	a.Merge(nil) // must not panic
}

func TestStringSorted(t *testing.T) {
	p := New()
	p.Record("b", 2, true)
	p.Record("a", 9, false)
	p.Record("a", 1, true)
	s := p.String()
	ia, ib := strings.Index(s, "a/1"), strings.Index(s, "b/2")
	i9 := strings.Index(s, "a/9")
	if !(ia >= 0 && i9 > ia && ib > i9) {
		t.Errorf("not sorted:\n%s", s)
	}
}
