package cfg

import (
	"fmt"
	"strings"
)

// DOT renders the flow graph in Graphviz syntax. Loop back edges are
// dashed; block labels show the ir label when present.
func (g *Graph) DOT(name string, li *LoopInfo) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  node [shape=box fontname=monospace];\n", name)
	for i, b := range g.F.Blocks {
		label := fmt.Sprintf("BL%d", i+1)
		if b.Label != "" {
			label += "\\n" + b.Label
		}
		fmt.Fprintf(&sb, "  n%d [label=%q];\n", i, label)
	}
	for u := range g.Succs {
		for _, v := range g.Succs[u] {
			attr := ""
			if li != nil && li.IsBackEdge(u, v) {
				attr = " [style=dashed label=back]"
			}
			fmt.Fprintf(&sb, "  n%d -> n%d%s;\n", u, v, attr)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
