package cfg

import (
	"reflect"
	"testing"

	"gsched/internal/ir"
	"gsched/internal/paperex"
)

// bl maps the paper's BL numbers (1-based, Figure 3) to block indices of
// the paperex.MinMax function (prologue is block 0).
func bl(n int) int { return n }

func minmaxGraph(t *testing.T) (*Graph, *ir.Func) {
	t.Helper()
	_, f := paperex.MinMax()
	if err := f.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return Build(f), f
}

func TestMinMaxEdges(t *testing.T) {
	g, _ := minmaxGraph(t)
	want := map[int][]int{
		0:      {bl(1), 11},     // entry: fallthrough BL1, taken exit
		bl(1):  {bl(2), bl(6)},  // I4 BF CL.4
		bl(2):  {bl(3), bl(4)},  // I6 BF CL.6
		bl(3):  {bl(4)},         // fallthrough
		bl(4):  {bl(5), bl(10)}, // I9 BF CL.9
		bl(5):  {bl(10)},        // I11 B CL.9
		bl(6):  {bl(7), bl(8)},  // I13 BF CL.11
		bl(7):  {bl(8)},         // fallthrough
		bl(8):  {bl(9), bl(10)}, // I16 BF CL.9
		bl(9):  {bl(10)},        // fallthrough
		bl(10): {11, bl(1)},     // I20 BT CL.0: fallthrough exit, taken back edge
		11:     nil,             // epilogue: RET
	}
	for u, w := range want {
		if !reflect.DeepEqual(g.Succs[u], w) {
			t.Errorf("succs(%d) = %v, want %v", u, g.Succs[u], w)
		}
	}
}

func TestMinMaxDominators(t *testing.T) {
	g, _ := minmaxGraph(t)
	dom := Dominators(g, 0)
	// BL1 dominates every loop block; BL10 dominates none of them but
	// itself; everything is dominated by the entry.
	for b := bl(1); b <= bl(10); b++ {
		if !dom.Dominates(bl(1), b) {
			t.Errorf("BL1 should dominate BL%d", b)
		}
		if !dom.Dominates(0, b) {
			t.Errorf("entry should dominate BL%d", b)
		}
	}
	if dom.Dominates(bl(2), bl(10)) {
		t.Error("BL2 must not dominate BL10 (the CL.4 side bypasses it)")
	}
	if got := dom.Idom[bl(10)]; got != bl(1) {
		t.Errorf("idom(BL10) = %d, want BL1", got)
	}
	if got := dom.Idom[bl(4)]; got != bl(2) {
		t.Errorf("idom(BL4) = %d, want BL2", got)
	}
}

func TestMinMaxLoops(t *testing.T) {
	g, _ := minmaxGraph(t)
	li := FindLoops(g)
	if li.Irreducible {
		t.Fatal("minmax is reducible")
	}
	if !li.IsBackEdge(bl(10), bl(1)) {
		t.Error("BL10->BL1 should be the back edge")
	}
	if li.IsBackEdge(bl(1), bl(2)) {
		t.Error("BL1->BL2 is not a back edge")
	}
	root := li.Root
	if root.IsLoop || root.Header != 0 {
		t.Errorf("root region = %v", root)
	}
	if len(root.Inner) != 1 {
		t.Fatalf("want 1 top-level loop, got %d", len(root.Inner))
	}
	loop := root.Inner[0]
	if !loop.IsLoop || loop.Header != bl(1) || loop.Depth != 1 {
		t.Errorf("loop = %v depth=%d", loop, loop.Depth)
	}
	wantBlocks := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if !reflect.DeepEqual(loop.Blocks, wantBlocks) {
		t.Errorf("loop blocks = %v, want %v", loop.Blocks, wantBlocks)
	}
	if !loop.IsInner() {
		t.Error("the minmax loop is an inner region")
	}
	if got := loop.OwnBlocks(); !reflect.DeepEqual(got, wantBlocks) {
		t.Errorf("OwnBlocks = %v, want %v", got, wantBlocks)
	}
}

func TestMinMaxForwardTopological(t *testing.T) {
	g, _ := minmaxGraph(t)
	li := FindLoops(g)
	loop := li.Root.Inner[0]
	sg := g.Forward(loop.Blocks, loop.Header, li.IsBackEdge)
	order, err := sg.Topological()
	if err != nil {
		t.Fatalf("Topological: %v", err)
	}
	pos := make(map[int]int)
	for i, b := range order {
		pos[b] = i
	}
	mustPrecede := [][2]int{{1, 2}, {1, 6}, {2, 3}, {2, 4}, {6, 8}, {4, 10}, {8, 10}, {5, 10}, {9, 10}}
	for _, pr := range mustPrecede {
		if pos[pr[0]] >= pos[pr[1]] {
			t.Errorf("topological order %v: BL%d should precede BL%d", order, pr[0], pr[1])
		}
	}
	if order[0] != bl(1) || order[len(order)-1] != bl(10) {
		t.Errorf("order = %v, want BL1 first and BL10 last", order)
	}
}

func TestMinMaxPostDominators(t *testing.T) {
	g, _ := minmaxGraph(t)
	li := FindLoops(g)
	loop := li.Root.Inner[0]
	sg := g.Forward(loop.Blocks, loop.Header, li.IsBackEdge)
	pdom := PostDominators(sg, RegionExits(g, li, loop))
	// Within the loop's forward body, BL10 postdominates everything.
	for b := bl(1); b <= bl(9); b++ {
		if !pdom.PostDominates(bl(10), b) {
			t.Errorf("BL10 should postdominate BL%d", b)
		}
	}
	// BL4 postdominates BL2 (both paths from BL2 reach BL4) but not BL1.
	if !pdom.PostDominates(bl(4), bl(2)) {
		t.Error("BL4 should postdominate BL2")
	}
	if pdom.PostDominates(bl(4), bl(1)) {
		t.Error("BL4 must not postdominate BL1")
	}
	// Equivalence pairs of the paper (§4.1): BL1~BL10, BL2~BL4, BL6~BL8.
	dom := Dominators(g, 0)
	equiv := func(a, b int) bool { return dom.Dominates(a, b) && pdom.PostDominates(b, a) }
	for _, pr := range [][2]int{{1, 10}, {2, 4}, {6, 8}} {
		if !equiv(pr[0], pr[1]) {
			t.Errorf("BL%d and BL%d should be equivalent", pr[0], pr[1])
		}
	}
	if equiv(bl(2), bl(10)) {
		t.Error("BL2 and BL10 are not equivalent")
	}
}

func TestReachableFrom(t *testing.T) {
	g, _ := minmaxGraph(t)
	li := FindLoops(g)
	loop := li.Root.Inner[0]
	sg := g.Forward(loop.Blocks, loop.Header, li.IsBackEdge)
	reach := sg.ReachableFrom()
	if !reach.Reaches(bl(1), bl(10)) {
		t.Error("BL10 should be reachable from BL1")
	}
	if reach.Reaches(bl(2), bl(6)) {
		t.Error("BL6 must not be reachable from BL2 in the forward body")
	}
	if !reach.Reaches(bl(6), bl(10)) {
		t.Error("BL10 should be reachable from BL6")
	}
	if reach.Reaches(bl(10), bl(1)) {
		t.Error("back edge must not make BL1 reachable from BL10 in the forward view")
	}
}

func TestIrreducibleDetection(t *testing.T) {
	// Two blocks jumping into each other with two entries:
	//   0 -> 1, 0 -> 2, 1 -> 2, 2 -> 1 (classic irreducible pair).
	f := ir.NewFunc("irr")
	b := ir.NewBuilder(f)
	b.Block("e")
	b.Cmp(ir.CR(0), ir.GPR(0), ir.GPR(1))
	b.BF("L2", ir.CR(0), ir.BitGT)
	b.Block("L1")
	b.Cmp(ir.CR(1), ir.GPR(0), ir.GPR(1))
	b.BT("L2", ir.CR(1), ir.BitLT)
	b.Block("dummy")
	b.B("L1")
	b.Block("L2")
	b.Cmp(ir.CR(2), ir.GPR(0), ir.GPR(1))
	b.BT("L1", ir.CR(2), ir.BitEQ)
	b.Block("x")
	b.Ret(ir.NoReg)
	f.ReindexBlocks()
	if err := f.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	g := Build(f)
	li := FindLoops(g)
	if !li.Irreducible {
		t.Error("graph with a two-entry cycle should be flagged irreducible")
	}
}

func TestNestedLoops(t *testing.T) {
	// for(i..) { for(j..) {} } — classic doubly nested counting loops.
	f := ir.NewFunc("nest")
	b := ir.NewBuilder(f)
	i, j, n, cr := ir.GPR(0), ir.GPR(1), ir.GPR(2), ir.CR(0)
	b.Block("entry")
	b.LI(i, 0)
	b.Block("outer")
	b.LI(j, 0)
	b.Block("inner")
	b.AI(j, j, 1)
	b.Cmp(cr, j, n)
	b.BT("inner", cr, ir.BitLT)
	b.Block("latch")
	b.AI(i, i, 1)
	b.Cmp(cr, i, n)
	b.BT("outer", cr, ir.BitLT)
	b.Block("exit")
	b.Ret(ir.NoReg)
	f.ReindexBlocks()
	if err := f.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	g := Build(f)
	li := FindLoops(g)
	if li.Irreducible {
		t.Fatal("nested counting loops are reducible")
	}
	if len(li.Root.Inner) != 1 {
		t.Fatalf("want 1 top-level loop, got %d", len(li.Root.Inner))
	}
	outer := li.Root.Inner[0]
	if len(outer.Inner) != 1 {
		t.Fatalf("want 1 nested loop, got %d", len(outer.Inner))
	}
	inner := outer.Inner[0]
	if inner.Header != 2 || !inner.IsInner() || inner.Depth != 2 {
		t.Errorf("inner loop = %v depth=%d", inner, inner.Depth)
	}
	if !reflect.DeepEqual(outer.OwnBlocks(), []int{1, 3}) {
		t.Errorf("outer own blocks = %v, want [1 3]", outer.OwnBlocks())
	}
	// Innermost-first walk order.
	var seen []*Region
	li.Root.Walk(func(r *Region) { seen = append(seen, r) })
	if len(seen) != 3 || seen[0] != inner || seen[1] != outer || seen[2] != li.Root {
		t.Errorf("walk order wrong: %v", seen)
	}
}
