package cfg

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"gsched/internal/ir"
)

// randomCFG builds a random but valid function with n blocks: each block
// gets a label, one dummy instruction, and a random terminator
// (conditional branch, unconditional branch, fallthrough, or return).
// The last block always returns.
func randomCFG(r *rand.Rand, n int) *ir.Func {
	f := ir.NewFunc("rand")
	b := ir.NewBuilder(f)
	for k := 0; k < n; k++ {
		b.Block(fmt.Sprintf("L%d", k))
		b.LI(ir.GPR(0), int64(k))
	}
	for k := 0; k < n; k++ {
		b.At(f.Blocks[k])
		target := func() string { return fmt.Sprintf("L%d", r.Intn(n)) }
		if k == n-1 {
			b.Ret(ir.NoReg)
			continue
		}
		switch r.Intn(4) {
		case 0: // conditional branch + fallthrough
			cr := ir.CR(0)
			b.Cmp(cr, ir.GPR(0), ir.GPR(1))
			b.BT(target(), cr, ir.BitLT)
		case 1: // unconditional branch
			b.B(target())
		case 2: // return
			b.Ret(ir.NoReg)
		default: // fallthrough
		}
	}
	f.ReindexBlocks()
	if err := f.Validate(); err != nil {
		panic(err)
	}
	return f
}

// bruteDominates checks the definition directly: a dominates b iff b is
// unreachable from the entry when a is removed (and b is reachable at
// all).
func bruteDominates(g *Graph, a, b int) bool {
	reach := g.Reachable(0)
	if !reach[b] {
		return false
	}
	if a == b {
		return true
	}
	if a == 0 {
		return true
	}
	// BFS avoiding a.
	seen := make([]bool, g.N())
	seen[0] = true
	queue := []int{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == a {
			continue
		}
		for _, v := range g.Succs[u] {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return !seen[b]
}

// TestDominatorsAgainstBruteForce validates the CHK implementation on
// random graphs via testing/quick.
func TestDominatorsAgainstBruteForce(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(10)
		f := randomCFG(r, n)
		g := Build(f)
		dom := Dominators(g, 0)
		reach := g.Reachable(0)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if !reach[a] || !reach[b] {
					continue
				}
				want := bruteDominates(g, a, b)
				got := dom.Dominates(a, b)
				if got != want {
					t.Logf("seed %d: dominates(%d,%d) = %v, brute force %v\n%s",
						seed, a, b, got, want, f)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 120}
	if testing.Short() {
		cfg.MaxCount = 25
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDominatorAxioms: reflexivity, entry dominates everything reachable,
// transitivity, and idom is the unique closest strict dominator.
func TestDominatorAxioms(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(12)
		f := randomCFG(r, n)
		g := Build(f)
		dom := Dominators(g, 0)
		reach := g.Reachable(0)
		for x := 0; x < n; x++ {
			if !reach[x] {
				continue
			}
			if !dom.Dominates(x, x) {
				t.Logf("seed %d: not reflexive at %d", seed, x)
				return false
			}
			if !dom.Dominates(0, x) {
				t.Logf("seed %d: entry does not dominate %d", seed, x)
				return false
			}
			// idom strictly dominates (except the root).
			if x != 0 {
				id := dom.Idom[x]
				if id < 0 || !dom.Dominates(id, x) {
					t.Logf("seed %d: idom(%d)=%d invalid", seed, x, id)
					return false
				}
			}
		}
		// Transitivity on sampled triples.
		for k := 0; k < 30; k++ {
			a, b, c := r.Intn(n), r.Intn(n), r.Intn(n)
			if reach[a] && reach[b] && reach[c] &&
				dom.Dominates(a, b) && dom.Dominates(b, c) && !dom.Dominates(a, c) {
				t.Logf("seed %d: transitivity broken (%d,%d,%d)", seed, a, b, c)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 80}
	if testing.Short() {
		cfg.MaxCount = 20
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCondensationOrderProperty: for random graphs, the condensation
// order of the full subgraph view must place u before v whenever v is
// reachable from u but not vice versa.
func TestCondensationOrderProperty(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(10)
		f := randomCFG(r, n)
		g := Build(f)
		reachSet := g.Reachable(0)
		var nodes []int
		for i := 0; i < n; i++ {
			if reachSet[i] {
				nodes = append(nodes, i)
			}
		}
		sg := g.Forward(nodes, 0, func(u, v int) bool { return false })
		order := sg.CondensationOrder()
		if len(order) != len(nodes) {
			t.Logf("seed %d: order %v misses nodes %v", seed, order, nodes)
			return false
		}
		pos := make(map[int]int)
		for i, u := range order {
			pos[u] = i
		}
		reach := sg.ReachableFrom()
		for _, u := range nodes {
			for _, v := range nodes {
				if u == v {
					continue
				}
				if reach.Reaches(u, v) && !reach.Reaches(v, u) && pos[u] > pos[v] {
					t.Logf("seed %d: %d should precede %d in %v\n%s", seed, u, v, order, f)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 120}
	if testing.Short() {
		cfg.MaxCount = 25
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPostDominatorsOnForwardView: on the minmax-like acyclic views,
// postdominance is dominance on the reversed graph; validate the virtual
// exit plumbing with a brute-force check on random DAG subsets.
func TestPostDominatorsOnForwardView(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		f := randomCFG(r, n)
		g := Build(f)
		li := FindLoops(g)
		if li.Irreducible {
			return true // skip irreducible shapes
		}
		reach := g.Reachable(0)
		var nodes []int
		for i := 0; i < n; i++ {
			if reach[i] {
				nodes = append(nodes, i)
			}
		}
		sg := g.Forward(nodes, 0, li.IsBackEdge)
		pdom := PostDominators(sg, nil)
		// Brute force: b postdominates a iff removing b cuts every
		// subgraph path from a to any exit (node with an edge to the
		// virtual exit = no subgraph successors here).
		exits := map[int]bool{}
		for _, u := range nodes {
			if len(sg.Succs[u]) == 0 {
				exits[u] = true
			}
		}
		canExitAvoiding := func(from, avoid int) bool {
			if from == avoid {
				return false
			}
			seen := map[int]bool{from: true}
			stack := []int{from}
			for len(stack) > 0 {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if exits[u] {
					return true
				}
				for _, v := range sg.Succs[u] {
					if v != avoid && !seen[v] {
						seen[v] = true
						stack = append(stack, v)
					}
				}
			}
			return false
		}
		for _, a := range nodes {
			for _, b := range nodes {
				if a == b {
					continue
				}
				want := !canExitAvoiding(a, b)
				got := pdom.PostDominates(b, a)
				if got != want {
					t.Logf("seed %d: pdom(%d,%d)=%v want %v\n%s", seed, b, a, got, want, f)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100}
	if testing.Short() {
		cfg.MaxCount = 20
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}
