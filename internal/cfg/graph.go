// Package cfg computes control flow analyses over ir functions: the flow
// graph itself, dominators and postdominators, back edges, reducibility,
// and the region (loop nesting) tree that drives the region-by-region
// global scheduling process of §5.1 of the paper.
package cfg

import (
	"fmt"
	"sort"
	"strings"

	"gsched/internal/ir"
)

// Graph is the control flow graph of a function. Nodes are block indices
// into F.Blocks; edges follow ir.Succs. The graph must be rebuilt after
// any transformation that adds, removes, or reorders blocks or changes
// terminators (pure instruction motion within existing blocks keeps the
// graph valid).
type Graph struct {
	F     *ir.Func
	Succs [][]int
	Preds [][]int
}

// Build constructs the flow graph of f. Block 0 is the entry node.
// Adjacency rows are carved out of one backing array (a block has at
// most two successors), and branch targets resolve through a label
// index instead of a per-branch linear scan.
func Build(f *ir.Func) *Graph {
	n := len(f.Blocks)
	g := &Graph{F: f, Succs: make([][]int, n), Preds: make([][]int, n)}
	byLabel := make(map[string]int, n)
	for i, b := range f.Blocks {
		if b.Label != "" {
			byLabel[b.Label] = i
		}
	}
	// First pass: per-block successor targets (≤2) and predecessor
	// counts.
	targets := make([][2]int, n)
	nsucc := make([]int, n)
	npred := make([]int, n)
	total := 0
	for i, b := range f.Blocks {
		t := targets[i][:0]
		term := b.Terminator()
		switch {
		case term == nil:
			if i+1 < n {
				t = append(t, i+1)
			}
		case term.Op == ir.OpB:
			if tgt, ok := byLabel[term.Target]; ok {
				t = append(t, tgt)
			}
		case term.Op == ir.OpBC || term.Op == ir.OpBCT:
			if i+1 < n {
				t = append(t, i+1)
			}
			if tgt, ok := byLabel[term.Target]; ok {
				t = append(t, tgt)
			}
		}
		nsucc[i] = len(t)
		for _, v := range t {
			npred[v]++
		}
		total += len(t)
	}
	// Second pass: carve rows and fill.
	backing := make([]int, 2*total)
	sb, pb := backing[:total], backing[total:]
	for i := 0; i < n; i++ {
		if nsucc[i] > 0 {
			g.Succs[i], sb = sb[:nsucc[i]:nsucc[i]], sb[nsucc[i]:]
		}
		if npred[i] > 0 {
			g.Preds[i], pb = pb[:0:npred[i]], pb[npred[i]:]
		}
	}
	for i := 0; i < n; i++ {
		copy(g.Succs[i], targets[i][:nsucc[i]])
		for _, v := range targets[i][:nsucc[i]] {
			g.Preds[v] = append(g.Preds[v], i)
		}
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.Succs) }

// ReversePostorder returns the nodes reachable from entry in reverse
// postorder of a depth-first search.
func (g *Graph) ReversePostorder(entry int) []int {
	seen := make([]bool, g.N())
	var post []int
	var dfs func(int)
	dfs = func(u int) {
		seen[u] = true
		for _, v := range g.Succs[u] {
			if !seen[v] {
				dfs(v)
			}
		}
		post = append(post, u)
	}
	dfs(entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Reachable returns the set of nodes reachable from entry.
func (g *Graph) Reachable(entry int) []bool {
	seen := make([]bool, g.N())
	stack := []int{entry}
	seen[entry] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Succs[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// String renders the graph as "BLi -> BLj BLk" lines, matching the
// node numbering style of Figure 3 of the paper (1-based).
func (g *Graph) String() string {
	var sb strings.Builder
	for u := range g.Succs {
		fmt.Fprintf(&sb, "BL%d ->", u+1)
		for _, v := range g.Succs[u] {
			fmt.Fprintf(&sb, " BL%d", v+1)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Subgraph is a filtered view of a Graph restricted to a block set with
// some edges removed (the forward, acyclic view of a region). Node
// numbering is preserved from the parent graph; nodes outside the set
// have empty adjacency.
type Subgraph struct {
	G     *Graph
	In    []bool  // membership
	Succs [][]int // filtered adjacency
	Preds [][]int
	Entry int
	Nodes []int // members in parent-graph numbering, ascending
}

// Forward builds the forward (back-edge-free) subgraph over the given
// node set. An edge u->v inside the set is dropped when back[u][v] is
// true. Edges leaving the set are dropped (region exits are modelled by
// the virtual exit in postdominator computations).
func (g *Graph) Forward(nodes []int, entry int, isBack func(u, v int) bool) *Subgraph {
	n := g.N()
	sg := &Subgraph{
		G:     g,
		In:    make([]bool, n),
		Succs: make([][]int, n),
		Preds: make([][]int, n),
		Entry: entry,
		Nodes: nodes,
	}
	for _, u := range nodes {
		sg.In[u] = true
	}
	// Count kept edges, then carve all adjacency rows from one backing
	// array instead of growing per-node slices edge by edge.
	total := 0
	for _, u := range nodes {
		for _, v := range g.Succs[u] {
			if sg.In[v] && !isBack(u, v) {
				total++
			}
		}
	}
	nsucc := make([]int, n)
	npred := make([]int, n)
	for _, u := range nodes {
		for _, v := range g.Succs[u] {
			if sg.In[v] && !isBack(u, v) {
				nsucc[u]++
				npred[v]++
			}
		}
	}
	backing := make([]int, 2*total)
	sb, pb := backing[:total], backing[total:]
	for _, u := range nodes {
		sg.Succs[u], sb = sb[:0:nsucc[u]], sb[nsucc[u]:]
		sg.Preds[u], pb = pb[:0:npred[u]], pb[npred[u]:]
	}
	for _, u := range nodes {
		for _, v := range g.Succs[u] {
			if sg.In[v] && !isBack(u, v) {
				sg.Succs[u] = append(sg.Succs[u], v)
				sg.Preds[v] = append(sg.Preds[v], u)
			}
		}
	}
	return sg
}

// Topological returns the member nodes in a topological order of the
// subgraph (entry first). It returns an error if the subgraph is cyclic,
// which for a forward view indicates an irreducible region.
func (sg *Subgraph) Topological() ([]int, error) {
	indeg := make([]int, len(sg.Succs))
	for _, u := range sg.Nodes {
		for _, v := range sg.Succs[u] {
			indeg[v]++
		}
	}
	// Stable queue: prefer original block order so schedules are
	// deterministic.
	var order []int
	ready := []int{}
	for _, u := range sg.Nodes {
		if indeg[u] == 0 {
			ready = append(ready, u)
		}
	}
	for len(ready) > 0 {
		u := ready[0]
		ready = ready[1:]
		order = append(order, u)
		for _, v := range sg.Succs[u] {
			indeg[v]--
			if indeg[v] == 0 {
				// insert keeping ascending block order
				at := len(ready)
				for k, w := range ready {
					if v < w {
						at = k
						break
					}
				}
				ready = append(ready, 0)
				copy(ready[at+1:], ready[at:])
				ready[at] = v
			}
		}
	}
	if len(order) != len(sg.Nodes) {
		return nil, fmt.Errorf("cfg: cyclic forward subgraph (irreducible region)")
	}
	return order, nil
}

// CondensationOrder returns the member nodes in a topological order of
// the subgraph's strongly-connected-component condensation: if any path
// leads from u's component to v's component, u appears before v. Members
// of one component (a nested loop kept intact in the dependence view)
// appear consecutively in ascending node order. This is the paper's
// block processing order — "if there is a path in the control flow graph
// from A to B, A is processed before B" — for region views that keep
// nested back edges.
func (sg *Subgraph) CondensationOrder() []int {
	// Tarjan's algorithm emits SCCs in reverse topological order.
	n := len(sg.Succs)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var sccs [][]int
	next := 0
	var strong func(u int)
	strong = func(u int) {
		index[u] = next
		low[u] = next
		next++
		stack = append(stack, u)
		onStack[u] = true
		for _, v := range sg.Succs[u] {
			if index[v] < 0 {
				strong(v)
				if low[v] < low[u] {
					low[u] = low[v]
				}
			} else if onStack[v] && index[v] < low[u] {
				low[u] = index[v]
			}
		}
		if low[u] == index[u] {
			var scc []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == u {
					break
				}
			}
			sort.Ints(scc)
			sccs = append(sccs, scc)
		}
	}
	// Deterministic root order.
	for _, u := range sg.Nodes {
		if index[u] < 0 {
			strong(u)
		}
	}
	// Reverse the SCC list to get topological order, but preserve a
	// deterministic layout among incomparable components: Tarjan's
	// reverse order is already a valid topological order; ties follow
	// the DFS root order, which we seeded ascending.
	var order []int
	for i := len(sccs) - 1; i >= 0; i-- {
		order = append(order, sccs[i]...)
	}
	return order
}

// Reach is the transitive reachability relation of a Subgraph, stored as
// one bitset row per member node. Rows and bit positions are keyed by a
// dense member index (ascending parent-graph node order); Reaches
// translates parent-graph numbers, so callers never see the dense index.
type Reach struct {
	idx   []int    // parent-graph node -> dense index, -1 for non-members
	words int      // row width in 64-bit words
	rows  []uint64 // len(sg.Nodes) rows of `words` words each
}

// Reaches reports whether there is a (possibly empty) path from u to v
// using subgraph edges. Non-member nodes reach nothing.
func (r *Reach) Reaches(u, v int) bool {
	if u < 0 || v < 0 || u >= len(r.idx) || v >= len(r.idx) {
		return false
	}
	du, dv := r.idx[u], r.idx[v]
	if du < 0 || dv < 0 {
		return false
	}
	return r.rows[du*r.words+dv/64]&(1<<(uint(dv)%64)) != 0
}

func (sg *Subgraph) newReach() *Reach {
	r := &Reach{idx: make([]int, len(sg.Succs))}
	for i := range r.idx {
		r.idx[i] = -1
	}
	for di, u := range sg.Nodes {
		r.idx[u] = di
	}
	r.words = (len(sg.Nodes) + 63) / 64
	r.rows = make([]uint64, len(sg.Nodes)*r.words)
	return r
}

func (r *Reach) row(denseIdx int) []uint64 {
	return r.rows[denseIdx*r.words : (denseIdx+1)*r.words]
}

// ReachableFrom returns the transitive reachability relation of the
// subgraph: Reaches(u, v) iff there is a (possibly empty) path from u to
// v using subgraph edges. Rows are dense bitsets, so the reverse
// topological sweep unions whole successor rows with word-wide ORs
// instead of per-node hashing.
func (sg *Subgraph) ReachableFrom() *Reach {
	r := sg.newReach()
	order, err := sg.Topological()
	if err != nil {
		// Fall back to per-node DFS for cyclic graphs.
		for _, u := range sg.Nodes {
			sg.markFrom(u, r)
		}
		return r
	}
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		du := r.idx[u]
		row := r.row(du)
		row[du/64] |= 1 << (uint(du) % 64)
		for _, v := range sg.Succs[u] {
			vrow := r.row(r.idx[v])
			for w := range row {
				row[w] |= vrow[w]
			}
		}
	}
	return r
}

// markFrom sets u's row to everything reachable from u by explicit
// traversal (cyclic subgraphs only).
func (sg *Subgraph) markFrom(u int, r *Reach) {
	row := r.row(r.idx[u])
	set := func(v int) bool {
		dv := r.idx[v]
		w, b := dv/64, uint64(1)<<(uint(dv)%64)
		if row[w]&b != 0 {
			return false
		}
		row[w] |= b
		return true
	}
	set(u)
	stack := []int{u}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range sg.Succs[x] {
			if set(v) {
				stack = append(stack, v)
			}
		}
	}
}
