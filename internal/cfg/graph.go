// Package cfg computes control flow analyses over ir functions: the flow
// graph itself, dominators and postdominators, back edges, reducibility,
// and the region (loop nesting) tree that drives the region-by-region
// global scheduling process of §5.1 of the paper.
package cfg

import (
	"fmt"
	"sort"
	"strings"

	"gsched/internal/ir"
)

// Graph is the control flow graph of a function. Nodes are block indices
// into F.Blocks; edges follow ir.Succs. The graph must be rebuilt after
// any transformation that adds, removes, or reorders blocks or changes
// terminators (pure instruction motion within existing blocks keeps the
// graph valid).
type Graph struct {
	F     *ir.Func
	Succs [][]int
	Preds [][]int
}

// Build constructs the flow graph of f. Block 0 is the entry node.
func Build(f *ir.Func) *Graph {
	n := len(f.Blocks)
	g := &Graph{F: f, Succs: make([][]int, n), Preds: make([][]int, n)}
	for i, b := range f.Blocks {
		for _, s := range ir.Succs(f, b) {
			g.Succs[i] = append(g.Succs[i], s.Index)
			g.Preds[s.Index] = append(g.Preds[s.Index], i)
		}
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.Succs) }

// ReversePostorder returns the nodes reachable from entry in reverse
// postorder of a depth-first search.
func (g *Graph) ReversePostorder(entry int) []int {
	seen := make([]bool, g.N())
	var post []int
	var dfs func(int)
	dfs = func(u int) {
		seen[u] = true
		for _, v := range g.Succs[u] {
			if !seen[v] {
				dfs(v)
			}
		}
		post = append(post, u)
	}
	dfs(entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Reachable returns the set of nodes reachable from entry.
func (g *Graph) Reachable(entry int) []bool {
	seen := make([]bool, g.N())
	stack := []int{entry}
	seen[entry] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Succs[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// String renders the graph as "BLi -> BLj BLk" lines, matching the
// node numbering style of Figure 3 of the paper (1-based).
func (g *Graph) String() string {
	var sb strings.Builder
	for u := range g.Succs {
		fmt.Fprintf(&sb, "BL%d ->", u+1)
		for _, v := range g.Succs[u] {
			fmt.Fprintf(&sb, " BL%d", v+1)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Subgraph is a filtered view of a Graph restricted to a block set with
// some edges removed (the forward, acyclic view of a region). Node
// numbering is preserved from the parent graph; nodes outside the set
// have empty adjacency.
type Subgraph struct {
	G     *Graph
	In    []bool  // membership
	Succs [][]int // filtered adjacency
	Preds [][]int
	Entry int
	Nodes []int // members in parent-graph numbering, ascending
}

// Forward builds the forward (back-edge-free) subgraph over the given
// node set. An edge u->v inside the set is dropped when back[u][v] is
// true. Edges leaving the set are dropped (region exits are modelled by
// the virtual exit in postdominator computations).
func (g *Graph) Forward(nodes []int, entry int, isBack func(u, v int) bool) *Subgraph {
	n := g.N()
	sg := &Subgraph{
		G:     g,
		In:    make([]bool, n),
		Succs: make([][]int, n),
		Preds: make([][]int, n),
		Entry: entry,
	}
	for _, u := range nodes {
		sg.In[u] = true
	}
	for _, u := range nodes {
		sg.Nodes = append(sg.Nodes, u)
		for _, v := range g.Succs[u] {
			if sg.In[v] && !isBack(u, v) {
				sg.Succs[u] = append(sg.Succs[u], v)
				sg.Preds[v] = append(sg.Preds[v], u)
			}
		}
	}
	return sg
}

// Topological returns the member nodes in a topological order of the
// subgraph (entry first). It returns an error if the subgraph is cyclic,
// which for a forward view indicates an irreducible region.
func (sg *Subgraph) Topological() ([]int, error) {
	indeg := make(map[int]int, len(sg.Nodes))
	for _, u := range sg.Nodes {
		indeg[u] += 0
		for _, v := range sg.Succs[u] {
			indeg[v]++
		}
	}
	// Stable queue: prefer original block order so schedules are
	// deterministic.
	var order []int
	ready := []int{}
	for _, u := range sg.Nodes {
		if indeg[u] == 0 {
			ready = append(ready, u)
		}
	}
	for len(ready) > 0 {
		u := ready[0]
		ready = ready[1:]
		order = append(order, u)
		for _, v := range sg.Succs[u] {
			indeg[v]--
			if indeg[v] == 0 {
				// insert keeping ascending block order
				at := len(ready)
				for k, w := range ready {
					if v < w {
						at = k
						break
					}
				}
				ready = append(ready, 0)
				copy(ready[at+1:], ready[at:])
				ready[at] = v
			}
		}
	}
	if len(order) != len(sg.Nodes) {
		return nil, fmt.Errorf("cfg: cyclic forward subgraph (irreducible region)")
	}
	return order, nil
}

// CondensationOrder returns the member nodes in a topological order of
// the subgraph's strongly-connected-component condensation: if any path
// leads from u's component to v's component, u appears before v. Members
// of one component (a nested loop kept intact in the dependence view)
// appear consecutively in ascending node order. This is the paper's
// block processing order — "if there is a path in the control flow graph
// from A to B, A is processed before B" — for region views that keep
// nested back edges.
func (sg *Subgraph) CondensationOrder() []int {
	// Tarjan's algorithm emits SCCs in reverse topological order.
	index := make(map[int]int, len(sg.Nodes))
	low := make(map[int]int, len(sg.Nodes))
	onStack := make(map[int]bool, len(sg.Nodes))
	var stack []int
	var sccs [][]int
	next := 0
	var strong func(u int)
	strong = func(u int) {
		index[u] = next
		low[u] = next
		next++
		stack = append(stack, u)
		onStack[u] = true
		for _, v := range sg.Succs[u] {
			if _, seen := index[v]; !seen {
				strong(v)
				if low[v] < low[u] {
					low[u] = low[v]
				}
			} else if onStack[v] && index[v] < low[u] {
				low[u] = index[v]
			}
		}
		if low[u] == index[u] {
			var scc []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == u {
					break
				}
			}
			sort.Ints(scc)
			sccs = append(sccs, scc)
		}
	}
	// Deterministic root order.
	for _, u := range sg.Nodes {
		if _, seen := index[u]; !seen {
			strong(u)
		}
	}
	// Reverse the SCC list to get topological order, but preserve a
	// deterministic layout among incomparable components: Tarjan's
	// reverse order is already a valid topological order; ties follow
	// the DFS root order, which we seeded ascending.
	var order []int
	for i := len(sccs) - 1; i >= 0; i-- {
		order = append(order, sccs[i]...)
	}
	return order
}

// ReachableFrom returns, for the subgraph, the transitive reachability
// relation reach[u][v] = true iff there is a (possibly empty) path from u
// to v using subgraph edges. Indexed by parent-graph node numbers, but
// only member rows are populated.
func (sg *Subgraph) ReachableFrom() map[int]map[int]bool {
	order, err := sg.Topological()
	reach := make(map[int]map[int]bool, len(sg.Nodes))
	if err != nil {
		// Fall back to per-node BFS for cyclic graphs.
		for _, u := range sg.Nodes {
			reach[u] = sg.bfsFrom(u)
		}
		return reach
	}
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		r := map[int]bool{u: true}
		for _, v := range sg.Succs[u] {
			for w := range reach[v] {
				r[w] = true
			}
		}
		reach[u] = r
	}
	return reach
}

func (sg *Subgraph) bfsFrom(u int) map[int]bool {
	r := map[int]bool{u: true}
	stack := []int{u}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range sg.Succs[x] {
			if !r[v] {
				r[v] = true
				stack = append(stack, v)
			}
		}
	}
	return r
}
