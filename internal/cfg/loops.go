package cfg

import (
	"fmt"
	"slices"
	"sort"
)

// Region is the paper's scheduling unit (§5.1): either a strongly
// connected component corresponding to a natural loop (IsLoop true), or
// the body of the function without the enclosed loops (the root region,
// IsLoop false). Blocks contains every block of the region including
// blocks of nested regions; Inner lists the directly nested regions.
type Region struct {
	Header int
	Blocks []int // sorted ascending; includes Header and nested blocks
	Inner  []*Region
	Parent *Region
	IsLoop bool
	Depth  int // 0 for the root (function body), 1 for top-level loops, ...
}

// Contains reports whether block b belongs to the region.
func (r *Region) Contains(b int) bool {
	i := sort.SearchInts(r.Blocks, b)
	return i < len(r.Blocks) && r.Blocks[i] == b
}

// IsInner reports whether the region contains no nested regions (the
// paper's "inner region").
func (r *Region) IsInner() bool { return len(r.Inner) == 0 }

// OwnBlocks returns the blocks belonging to this region but not to any
// nested region. Instructions of nested regions are pinned when this
// region is scheduled (nothing moves in or out of a region).
func (r *Region) OwnBlocks() []int {
	nested := make(map[int]bool)
	for _, in := range r.Inner {
		for _, b := range in.Blocks {
			nested[b] = true
		}
	}
	var own []int
	for _, b := range r.Blocks {
		if !nested[b] {
			own = append(own, b)
		}
	}
	return own
}

// RegionHeights returns the nesting height of every region in the tree
// rooted at root: 0 for inner regions, 1 + the maximum child height
// otherwise. One post-order walk replaces per-node recomputation, which
// would make height queries quadratic in the nesting depth.
func RegionHeights(root *Region) map[*Region]int {
	heights := make(map[*Region]int)
	var walk func(*Region) int
	walk = func(r *Region) int {
		h := 0
		for _, in := range r.Inner {
			if ch := walk(in) + 1; ch > h {
				h = ch
			}
		}
		heights[r] = h
		return h
	}
	walk(root)
	return heights
}

// Walk visits the region tree innermost-first (children before parents).
func (r *Region) Walk(fn func(*Region)) {
	for _, in := range r.Inner {
		in.Walk(fn)
	}
	fn(r)
}

func (r *Region) String() string {
	kind := "body"
	if r.IsLoop {
		kind = "loop"
	}
	return fmt.Sprintf("%s@BL%d%v", kind, r.Header+1, r.Blocks)
}

// LoopInfo summarises the loop structure of a function.
type LoopInfo struct {
	G *Graph
	// Root is the function-body region containing everything reachable.
	Root *Region
	// BackEdge[u] lists the headers v such that u->v is a back edge.
	backEdge map[[2]int]bool
	// Irreducible is true when some cycle is not a natural loop; the
	// paper schedules only reducible regions, so irreducible functions
	// are left to the basic block scheduler.
	Irreducible bool
	dom         *DomTree
}

// FindLoops discovers natural loops and builds the region tree. Entry is
// block 0.
func FindLoops(g *Graph) *LoopInfo {
	dom := Dominators(g, 0)
	li := &LoopInfo{G: g, backEdge: make(map[[2]int]bool), dom: dom}
	reach := g.Reachable(0)

	// Back edges: u->v with v dominating u.
	type loopAcc struct {
		header int
		blocks map[int]bool
	}
	loops := make(map[int]*loopAcc) // header -> accumulated body
	for u := 0; u < g.N(); u++ {
		if !reach[u] {
			continue
		}
		for _, v := range g.Succs[u] {
			if dom.Dominates(v, u) {
				li.backEdge[[2]int{u, v}] = true
				acc := loops[v]
				if acc == nil {
					acc = &loopAcc{header: v, blocks: map[int]bool{v: true}}
					loops[v] = acc
				}
				// Natural loop: v plus all nodes reaching u
				// without passing through v.
				if !acc.blocks[u] {
					acc.blocks[u] = true
					stack := []int{u}
					for len(stack) > 0 {
						x := stack[len(stack)-1]
						stack = stack[:len(stack)-1]
						for _, p := range g.Preds[x] {
							if reach[p] && !acc.blocks[p] {
								acc.blocks[p] = true
								stack = append(stack, p)
							}
						}
					}
				}
			}
		}
	}

	// Reducibility: with the discovered back edges removed, the
	// reachable graph must be acyclic.
	li.Irreducible = hasCycleWithout(g, reach, li.backEdge)

	// Materialise loop regions.
	var regions []*Region
	for _, acc := range loops {
		r := &Region{Header: acc.header, IsLoop: true}
		for b := range acc.blocks {
			r.Blocks = append(r.Blocks, b)
		}
		sort.Ints(r.Blocks)
		regions = append(regions, r)
	}
	// Deterministic order: by size ascending then header (inner loops are
	// strictly smaller than the loops containing them).
	slices.SortFunc(regions, func(a, b *Region) int {
		if len(a.Blocks) != len(b.Blocks) {
			return len(a.Blocks) - len(b.Blocks)
		}
		return a.Header - b.Header
	})

	// Root region covers everything reachable.
	root := &Region{Header: 0, IsLoop: false}
	for b := 0; b < g.N(); b++ {
		if reach[b] {
			root.Blocks = append(root.Blocks, b)
		}
	}

	// Nest each loop in the smallest strictly-containing region.
	for i, r := range regions {
		var parent *Region
		for j := i + 1; j < len(regions); j++ {
			c := regions[j]
			if len(c.Blocks) > len(r.Blocks) && c.Contains(r.Header) {
				parent = c
				break
			}
		}
		if parent == nil {
			parent = root
		}
		r.Parent = parent
		parent.Inner = append(parent.Inner, r)
	}
	var setDepth func(r *Region, d int)
	setDepth = func(r *Region, d int) {
		r.Depth = d
		slices.SortFunc(r.Inner, func(a, b *Region) int { return a.Header - b.Header })
		for _, in := range r.Inner {
			setDepth(in, d+1)
		}
	}
	setDepth(root, 0)
	li.Root = root
	return li
}

// IsBackEdge reports whether u->v is a back edge of some natural loop.
func (li *LoopInfo) IsBackEdge(u, v int) bool { return li.backEdge[[2]int{u, v}] }

// Dom returns the dominator tree used for loop discovery.
func (li *LoopInfo) Dom() *DomTree { return li.dom }

// hasCycleWithout reports whether the reachable subgraph minus the given
// edges contains a cycle.
func hasCycleWithout(g *Graph, reach []bool, skip map[[2]int]bool) bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, g.N())
	var dfs func(int) bool
	dfs = func(u int) bool {
		color[u] = grey
		for _, v := range g.Succs[u] {
			if skip[[2]int{u, v}] {
				continue
			}
			switch color[v] {
			case grey:
				return true
			case white:
				if dfs(v) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for u := 0; u < g.N(); u++ {
		if reach[u] && color[u] == white {
			if dfs(u) {
				return true
			}
		}
	}
	return false
}

// RegionExits returns the member nodes of the region that can leave its
// forward view: nodes with an edge out of the region, a back edge (the
// loop-continuing jump leaves the forward body), or a function exit.
func RegionExits(g *Graph, li *LoopInfo, r *Region) []int {
	var exits []int
	for _, u := range r.Blocks {
		isExit := len(g.Succs[u]) == 0
		for _, v := range g.Succs[u] {
			if !r.Contains(v) || li.IsBackEdge(u, v) {
				isExit = true
			}
		}
		if isExit {
			exits = append(exits, u)
		}
	}
	return exits
}
