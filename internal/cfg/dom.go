package cfg

// Dominator computation using the iterative algorithm of Cooper, Harvey
// and Kennedy ("A Simple, Fast Dominance Algorithm"). The same engine
// serves dominators (forward graph from entry) and postdominators
// (reversed graph from a virtual exit).

// DomTree holds immediate dominators: Idom[u] is the immediate dominator
// of u, Idom[root] == root, and Idom[u] == -1 for nodes unreachable from
// the root.
type DomTree struct {
	Root int
	Idom []int
}

// computeIdom runs the CHK algorithm over an explicit adjacency.
// n is the node count; preds gives the predecessors of each node in the
// direction of the analysis.
func computeIdom(n, root int, succs, preds [][]int) *DomTree {
	// Reverse postorder from root over succs.
	seen := make([]bool, n)
	var post []int
	var dfs func(int)
	dfs = func(u int) {
		seen[u] = true
		for _, v := range succs[u] {
			if !seen[v] {
				dfs(v)
			}
		}
		post = append(post, u)
	}
	dfs(root)
	rpo := make([]int, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		rpo = append(rpo, post[i])
	}
	num := make([]int, n) // rpo number, lower = earlier
	for i := range num {
		num[i] = -1
	}
	for i, u := range rpo {
		num[u] = i
	}

	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[root] = root

	intersect := func(a, b int) int {
		for a != b {
			for num[a] > num[b] {
				a = idom[a]
			}
			for num[b] > num[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, u := range rpo {
			if u == root {
				continue
			}
			newIdom := -1
			for _, p := range preds[u] {
				if num[p] < 0 || idom[p] < 0 {
					continue // unreachable or not yet processed
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && idom[u] != newIdom {
				idom[u] = newIdom
				changed = true
			}
		}
	}
	return &DomTree{Root: root, Idom: idom}
}

// Dominators computes the dominator tree of g from the entry node.
func Dominators(g *Graph, entry int) *DomTree {
	return computeIdom(g.N(), entry, g.Succs, g.Preds)
}

// Dominates reports whether a dominates b (reflexively).
func (t *DomTree) Dominates(a, b int) bool {
	if t.Idom[b] < 0 {
		return false
	}
	for {
		if a == b {
			return true
		}
		if b == t.Root {
			return false
		}
		b = t.Idom[b]
		if b < 0 {
			return false
		}
	}
}

// PostDomTree is the postdominator tree of a subgraph, computed against a
// virtual exit node (numbered G.N()).
type PostDomTree struct {
	tree *DomTree
	// VirtualExit is the node number of the added exit.
	VirtualExit int
}

// PostDominators computes postdominators of the subgraph. exits lists the
// member nodes considered to leave the region (they get an edge to the
// virtual exit node). Every member with no subgraph successors is treated
// as an exit automatically.
func PostDominators(sg *Subgraph, exits []int) *PostDomTree {
	n := sg.G.N()
	vx := n
	// Build the reversed adjacency including the virtual exit, carving
	// all rows from one backing array (count, carve, fill).
	succs := make([][]int, n+1)
	preds := make([][]int, n+1)
	isExit := make([]bool, n)
	for _, e := range exits {
		isExit[e] = true
	}
	total := 0
	nsucc := make([]int, n+1)
	npred := make([]int, n+1)
	for _, u := range sg.Nodes {
		if len(sg.Succs[u]) == 0 {
			isExit[u] = true
		}
		for _, v := range sg.Succs[u] {
			nsucc[v]++ // reversed: v -> u
			npred[u]++
			total++
		}
		if isExit[u] {
			nsucc[vx]++
			npred[u]++
			total++
		}
	}
	backing := make([]int, 2*total)
	sb, pb := backing[:total], backing[total:]
	for i := 0; i <= n; i++ {
		succs[i], sb = sb[:0:nsucc[i]], sb[nsucc[i]:]
		preds[i], pb = pb[:0:npred[i]], pb[npred[i]:]
	}
	addEdge := func(u, v int) { // edge u->v in the original direction
		// reversed: v -> u
		succs[v] = append(succs[v], u)
		preds[u] = append(preds[u], v)
	}
	for _, u := range sg.Nodes {
		for _, v := range sg.Succs[u] {
			addEdge(u, v)
		}
		if isExit[u] {
			addEdge(u, vx)
		}
	}
	t := computeIdom(n+1, vx, succs, preds)
	return &PostDomTree{tree: t, VirtualExit: vx}
}

// PostDominates reports whether a postdominates b (reflexively).
func (t *PostDomTree) PostDominates(a, b int) bool { return t.tree.Dominates(a, b) }

// Ipdom returns the immediate postdominator of u (possibly the virtual
// exit), or -1 if u was not reachable in the reversed graph.
func (t *PostDomTree) Ipdom(u int) int { return t.tree.Idom[u] }
