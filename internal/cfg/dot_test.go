package cfg

import (
	"strings"
	"testing"

	"gsched/internal/paperex"
)

func TestDOTRendering(t *testing.T) {
	_, f := paperex.MinMax()
	g := Build(f)
	li := FindLoops(g)
	dot := g.DOT("minmax", li)
	for _, want := range []string{
		"digraph \"minmax\"",
		"CL.0",         // labelled block
		"style=dashed", // the back edge
		"n1 -> n2",     // BL1 -> BL2
		"}",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Exactly one dashed (back) edge in minmax.
	if got := strings.Count(dot, "style=dashed"); got != 1 {
		t.Errorf("dashed edges = %d, want 1", got)
	}
	// Every block gets a node.
	if got := strings.Count(dot, "label="); got < len(f.Blocks) {
		t.Errorf("nodes = %d, want at least %d", got, len(f.Blocks))
	}
}

func TestDOTWithoutLoopInfo(t *testing.T) {
	_, f := paperex.Speculation()
	g := Build(f)
	dot := g.DOT("spec", nil)
	if !strings.Contains(dot, "digraph") || strings.Contains(dot, "dashed") {
		t.Errorf("unexpected rendering:\n%s", dot)
	}
}
