package minic

import (
	"strings"
	"testing"

	"gsched/internal/sim"
)

// runProgram compiles src and runs entry, returning the result.
func runProgram(t *testing.T, src, entry string, args ...int64) *sim.Result {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	m, err := sim.Load(prog)
	if err != nil {
		t.Fatalf("Load: %v\n%s", err, prog)
	}
	res, err := m.Run(entry, args, nil, sim.Options{})
	if err != nil {
		t.Fatalf("Run: %v\n%s", err, prog)
	}
	return res
}

func expectRet(t *testing.T, src, entry string, want int64, args ...int64) {
	t.Helper()
	if got := runProgram(t, src, entry, args...).Ret; got != want {
		t.Errorf("%s(%v) = %d, want %d", entry, args, got, want)
	}
}

func TestArithmetic(t *testing.T) {
	src := `
int f(int a, int b) {
    return (a + b) * 3 - a / b + a % b - (a << 1) + (b >> 1);
}`
	a, b := int64(17), int64(5)
	want := (a+b)*3 - a/b + a%b - (a << 1) + (b >> 1)
	expectRet(t, src, "f", want, a, b)
}

func TestBitwise(t *testing.T) {
	src := `int f(int a, int b) { return (a & b) | (a ^ b) | ~a & 15; }`
	a, b := int64(0b1100), int64(0b1010)
	want := (a & b) | (a ^ b) | (^a & 15)
	expectRet(t, src, "f", want, a, b)
}

func TestUnary(t *testing.T) {
	expectRet(t, `int f(int a) { return -a + ~a; }`, "f", -7+^int64(7), 7)
	expectRet(t, `int f(int a) { return !a; }`, "f", 1, 0)
	expectRet(t, `int f(int a) { return !a; }`, "f", 0, 42)
	expectRet(t, `int f(int a) { return !!a; }`, "f", 1, 42)
}

func TestComparisonsAsValues(t *testing.T) {
	src := `int f(int a, int b) {
	return (a < b) * 100 + (a <= b) * 10 + (a == b) + (a != b) * 2 + (a > b) * 4 + (a >= b) * 8;
}`
	expectRet(t, src, "f", 100+10+2, 3, 9)
	expectRet(t, src, "f", 10+1+8, 5, 5)
	expectRet(t, src, "f", 2+4+8, 9, 3)
}

func TestIfElseChain(t *testing.T) {
	src := `
int grade(int s) {
    if (s >= 90) return 4;
    else if (s >= 80) return 3;
    else if (s >= 70) return 2;
    else if (s >= 60) return 1;
    return 0;
}`
	for s, want := range map[int64]int64{95: 4, 85: 3, 75: 2, 65: 1, 10: 0, 90: 4} {
		expectRet(t, src, "grade", want, s)
	}
}

func TestWhileAndFor(t *testing.T) {
	src := `
int sumw(int n) {
    int s = 0;
    int i = 1;
    while (i <= n) { s += i; i++; }
    return s;
}
int sumf(int n) {
    int s = 0;
    for (int i = 1; i <= n; i++) s = s + i;
    return s;
}`
	expectRet(t, src, "sumw", 55, 10)
	expectRet(t, src, "sumf", 55, 10)
	expectRet(t, src, "sumw", 0, 0)
	expectRet(t, src, "sumf", 0, 0)
}

func TestDoWhile(t *testing.T) {
	src := `
int f(int n) {
    int c = 0;
    do { c++; n = n - 1; } while (n > 0);
    return c;
}`
	expectRet(t, src, "f", 5, 5)
	expectRet(t, src, "f", 1, 0) // do-while runs at least once
}

func TestBreakContinue(t *testing.T) {
	src := `
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        if (i % 2 == 0) continue;
        if (i > 7) break;
        s += i;
    }
    return s;
}`
	expectRet(t, src, "f", 1+3+5+7, 20)
}

func TestNestedLoops(t *testing.T) {
	src := `
int f(int n) {
    int c = 0;
    for (int i = 0; i < n; i++)
        for (int j = 0; j < n; j++)
            if ((i + j) % 3 == 0) c++;
    return c;
}`
	// Count pairs (i,j) in [0,6)^2 with (i+j)%3==0: 12.
	expectRet(t, src, "f", 12, 6)
}

func TestGlobalsAndArrays(t *testing.T) {
	src := `
int total = 5;
int a[8] = {1, 2, 3, 4};
int f(int n) {
    a[4] = 10;
    a[5] = a[0] + a[3];
    for (int i = 0; i < 6; i++) total += a[i];
    return total;
}`
	expectRet(t, src, "f", 5+1+2+3+4+10+5, 0)
}

func TestShortCircuit(t *testing.T) {
	src := `
int calls = 0;
int bump(int v) { calls += 1; return v; }
int andf(int a) { if (a > 0 && bump(1) > 0) return calls; return calls + 100; }
int orf(int a)  { if (a > 0 || bump(1) > 0) return calls; return calls + 100; }`
	// a>0 false: bump must not run in andf.
	expectRet(t, src, "andf", 100, -1)
	// a>0 true: bump runs once.
	expectRet(t, src, "andf", 1, 1)
	// a>0 true: bump must not run in orf.
	expectRet(t, src, "orf", 0, 1)
	// a>0 false: bump runs.
	expectRet(t, src, "orf", 1, -1)
}

func TestRecursion(t *testing.T) {
	src := `
int fib(int n) {
    if (n < 2) return n;
    return fib(n-1) + fib(n-2);
}`
	expectRet(t, src, "fib", 55, 10)
}

func TestMutualCalls(t *testing.T) {
	src := `
int isOdd(int n);
int isEven(int n) { if (n == 0) return 1; return isOdd(n - 1); }
int isOdd(int n)  { if (n == 0) return 0; return isEven(n - 1); }`
	// Forward declarations are not in the subset; rewrite without them.
	src = `
int helper(int n, int odd) {
    if (n == 0) return odd;
    return helper(n - 1, 1 - odd);
}
int isOdd(int n) { return helper(n, 0); }`
	expectRet(t, src, "isOdd", 1, 7)
	expectRet(t, src, "isOdd", 0, 10)
}

func TestPrintBuiltin(t *testing.T) {
	src := `
void main(int n) {
    for (int i = 0; i < n; i++) print(i * i);
}`
	res := runProgram(t, src, "main", 4)
	if got := res.PrintedString(); got != "0 1 4 9" {
		t.Errorf("printed %q, want \"0 1 4 9\"", got)
	}
}

func TestVoidFunctions(t *testing.T) {
	src := `
int g = 0;
void bump(int v) { g += v; return; }
int f(int n) { bump(n); bump(n); return g; }`
	expectRet(t, src, "f", 14, 7)
}

func TestScoping(t *testing.T) {
	src := `
int x = 100;
int f(int n) {
    int x = 1;
    { int x = 2; n += x; }
    n += x;
    return n;
}`
	expectRet(t, src, "f", 3, 0)
}

func TestMinMaxProgramOfFigure1(t *testing.T) {
	// The paper's Figure 1 program, adapted to the subset (prints
	// instead of printf, parameterised array length).
	src := `
int a[64] = {5, 9, -2, 3, 14, 7, 0, 11, 6};
int minmax(int n) {
    int min = a[0];
    int max = min;
    int i = 1;
    while (i < n) {
        int u = a[i];
        int v = a[i+1];
        if (u > v) {
            if (u > max) max = u;
            if (v < min) min = v;
        }
        else {
            if (v > max) max = v;
            if (u < min) min = u;
        }
        i = i + 2;
    }
    print(min);
    print(max);
    return min;
}`
	res := runProgram(t, src, "minmax", 9)
	if res.Ret != -2 {
		t.Errorf("min = %d, want -2", res.Ret)
	}
	if got := res.PrintedString(); got != "-2 14" {
		t.Errorf("printed %q, want \"-2 14\"", got)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"undefined var", `int f(int a) { return b; }`, "undefined variable"},
		{"undefined func", `int f(int a) { return g(a); }`, "undefined function"},
		{"arity", `int g(int a) { return a; } int f(int a) { return g(a, a); }`, "takes 1 arguments"},
		{"void as value", `void g(int a) { } int f(int a) { return g(a); }`, "used as a value"},
		{"array as scalar", `int a[4]; int f(int x) { return a; }`, "without an index"},
		{"scalar as array", `int s; int f(int x) { return s[0]; }`, "not an array"},
		{"break outside", `int f(int a) { break; return a; }`, "break outside"},
		{"continue outside", `int f(int a) { continue; return a; }`, "continue outside"},
		{"redeclared", `int f(int a) { int a = 1; return a; }`, "redeclared"},
		{"void return value", `void f(int a) { return a; }`, "returns a value"},
		{"missing return value", `int f(int a) { return; }`, "must return a value"},
		{"syntax", `int f(int a) { return a + ; }`, "expected expression"},
		{"unterminated comment", `/* int f() {}`, "unterminated"},
		{"global redecl", `int g; int g;`, "redeclared"},
		{"print as value", `int f(int a) { return print(a); }`, "returns no value"},
	}
	for _, tc := range cases {
		_, err := Compile(tc.src)
		if err == nil {
			t.Errorf("%s: compiled unexpectedly", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := Lex("int f\n  (x)")
	if err != nil {
		t.Fatal(err)
	}
	// tokens: int@1:1 f@1:5 (@2:3 x@2:4 )@2:5 EOF
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("int at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[2].Line != 2 || toks[2].Col != 3 {
		t.Errorf("( at %d:%d, want 2:3", toks[2].Line, toks[2].Col)
	}
}

func TestCommentsAndFormatting(t *testing.T) {
	src := `
// line comment
/* block
   comment */
int f(int a) { // trailing
    return a /* inline */ + 1;
}`
	expectRet(t, src, "f", 8, 7)
}

func TestFallOffEndReturnsZero(t *testing.T) {
	expectRet(t, `int f(int a) { if (a > 0) return a; }`, "f", 0, -5)
	expectRet(t, `int f(int a) { if (a > 0) return a; }`, "f", 3, 3)
}
