package minic

import (
	"fmt"
	"io"
	"math"

	"gsched/internal/ir"
)

// Compile parses and compiles a mini-C source file into an ir program.
// It drives the streaming Reader (see stream.go), so the whole-program
// and per-function paths share one implementation.
func Compile(src string) (*ir.Program, error) {
	r, err := Open(src)
	if err != nil {
		return nil, err
	}
	for {
		f, err := r.ParseFunc()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		r.Prog().AddFunc(f)
	}
	return r.Prog(), nil
}

// Generate lowers a parsed program to ir.
func Generate(ast *Program) (*ir.Program, error) {
	g, err := newGen(ast.Globals, ast.Funcs)
	if err != nil {
		return nil, err
	}
	for _, fn := range ast.Funcs {
		f, err := g.genFunc(fn)
		if err != nil {
			return nil, err
		}
		g.out.AddFunc(f)
	}
	if err := g.out.Validate(); err != nil {
		return nil, fmt.Errorf("minic: internal: generated invalid ir: %w", err)
	}
	return g.out, nil
}

// newGen builds the whole-unit symbol tables every function's lowering
// needs (globals for addressing, function signatures for call arity and
// void checks — calls may reference functions declared later), and
// registers the global data symbols on the output program.
func newGen(globals []*GlobalDecl, funcs []*FuncDecl) (*gen, error) {
	g := &gen{
		out:     ir.NewProgram(),
		globals: make(map[string]*GlobalDecl),
		funcs:   make(map[string]*FuncDecl),
	}
	for _, gd := range globals {
		if g.globals[gd.Name] != nil {
			return nil, errAt(gd.Line, 1, "global %q redeclared", gd.Name)
		}
		g.globals[gd.Name] = gd
		words := gd.Size
		if words == 0 {
			words = 1
		}
		s := g.out.AddSym(gd.Name, words)
		s.Init = gd.Init
	}
	for _, fn := range funcs {
		if g.funcs[fn.Name] != nil {
			return nil, errAt(fn.Line, 1, "function %q redeclared", fn.Name)
		}
		if g.globals[fn.Name] != nil {
			return nil, errAt(fn.Line, 1, "%q redeclared as function", fn.Name)
		}
		g.funcs[fn.Name] = fn
	}
	return g, nil
}

type loopCtx struct {
	breakLbl    string
	continueLbl string
}

type gen struct {
	out     *ir.Program
	globals map[string]*GlobalDecl
	funcs   map[string]*FuncDecl

	fn     *FuncDecl
	f      *ir.Func
	b      *ir.Builder
	scopes []map[string]ir.Reg
	loops  []loopCtx
	labelN int
}

func (g *gen) fresh(prefix string) string {
	g.labelN++
	return fmt.Sprintf(".%s%d", prefix, g.labelN)
}

// cur ensures an open (unterminated) block and returns the builder.
func (g *gen) cur() *ir.Builder {
	if g.b.Cur == nil || g.b.Cur.Terminator() != nil {
		g.b.Block("")
	}
	return g.b
}

// block opens a new labelled block.
func (g *gen) block(label string) { g.b.Block(label) }

func (g *gen) pushScope() { g.scopes = append(g.scopes, make(map[string]ir.Reg)) }
func (g *gen) popScope()  { g.scopes = g.scopes[:len(g.scopes)-1] }

func (g *gen) declare(name string, class ir.RegClass, line int) (ir.Reg, error) {
	scope := g.scopes[len(g.scopes)-1]
	if _, dup := scope[name]; dup {
		return ir.NoReg, errAt(line, 1, "%q redeclared in this scope", name)
	}
	r := g.f.NewReg(class)
	scope[name] = r
	return r, nil
}

// isF reports whether a value register holds a float.
func isF(r ir.Reg) bool { return r.Class == ir.ClassFPR }

// toFloat coerces a value to the float register class (FCVT).
func (g *gen) toFloat(r ir.Reg) ir.Reg {
	if isF(r) {
		return r
	}
	t := g.f.NewReg(ir.ClassFPR)
	g.cur().Emit(ir.OpFCvt, func(i *ir.Instr) { i.Def = t; i.A = r })
	return t
}

// toInt coerces a value to the fixed register class (FTRUNC).
func (g *gen) toInt(r ir.Reg) ir.Reg {
	if !isF(r) {
		return r
	}
	t := g.f.NewReg(ir.ClassGPR)
	g.cur().Emit(ir.OpFTrunc, func(i *ir.Instr) { i.Def = t; i.A = r })
	return t
}

// floatNum materialises a float literal. The machine has no float
// immediates and the object format no float data, so literals are built
// arithmetically: the exact small rational num/10^k when one exists
// (every source literal like 2.5 does), otherwise truncated to an
// integer. Both paths are deterministic, which is what the differential
// oracle needs.
func (g *gen) floatNum(v float64) ir.Reg {
	num, den := v, int64(1)
	for i := 0; i < 15 && num != math.Trunc(num); i++ {
		num *= 10
		den *= 10
	}
	f := g.f.NewReg(ir.ClassFPR)
	if math.IsNaN(num) || math.Abs(num) >= 1<<53 {
		z := g.f.NewReg(ir.ClassGPR)
		g.cur().LI(z, 0)
		g.cur().Emit(ir.OpFCvt, func(i *ir.Instr) { i.Def = f; i.A = z })
		return f
	}
	n := g.f.NewReg(ir.ClassGPR)
	g.cur().LI(n, int64(num))
	g.cur().Emit(ir.OpFCvt, func(i *ir.Instr) { i.Def = f; i.A = n })
	if den == 1 {
		return f
	}
	d := g.f.NewReg(ir.ClassGPR)
	g.cur().LI(d, den)
	fd := g.f.NewReg(ir.ClassFPR)
	g.cur().Emit(ir.OpFCvt, func(i *ir.Instr) { i.Def = fd; i.A = d })
	q := g.f.NewReg(ir.ClassFPR)
	g.cur().Emit(ir.OpFDiv, func(i *ir.Instr) { i.Def = q; i.A = f; i.B = fd })
	return q
}

func (g *gen) lookup(name string) (ir.Reg, bool) {
	for i := len(g.scopes) - 1; i >= 0; i-- {
		if r, ok := g.scopes[i][name]; ok {
			return r, true
		}
	}
	return ir.NoReg, false
}

// genFunc lowers one function; the caller decides where the result
// goes (Generate appends it to the output program, the streaming
// Reader hands it to its consumer). Label numbering (g.labelN)
// continues across calls, so lowering functions one at a time yields
// the same bytes as lowering them all.
func (g *gen) genFunc(fn *FuncDecl) (*ir.Func, error) {
	g.fn = fn
	g.f = ir.NewFunc(fn.Name)
	g.b = ir.NewBuilder(g.f)
	g.scopes = nil
	g.loops = nil
	g.pushScope()
	g.block("entry")
	for _, p := range fn.Params {
		r, err := g.declare(p, ir.ClassGPR, fn.Line)
		if err != nil {
			return nil, err
		}
		g.f.Params = append(g.f.Params, r)
	}
	// The body's top level shares the parameter scope, so a local
	// redeclaring a parameter is rejected (as in C).
	for _, s := range fn.Body.Stmts {
		if err := g.genStmt(s); err != nil {
			return nil, err
		}
	}
	// Fall-off-the-end return.
	if g.b.Cur == nil || g.b.Cur.Terminator() == nil {
		if fn.Void {
			g.cur().Ret(ir.NoReg)
		} else {
			r := g.f.NewReg(ir.ClassGPR)
			g.cur().LI(r, 0)
			g.cur().Ret(r)
		}
	}
	// Drop empty unlabelled blocks: they only pass control through and
	// would otherwise inflate region block counts.
	kept := g.f.Blocks[:0]
	for _, b := range g.f.Blocks {
		if len(b.Instrs) == 0 && b.Label == "" {
			continue
		}
		kept = append(kept, b)
	}
	g.f.Blocks = kept
	g.f.ReindexBlocks()
	g.popScope()
	return g.f, nil
}

func (g *gen) genBlockStmt(b *BlockStmt) error {
	g.pushScope()
	defer g.popScope()
	for _, s := range b.Stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) genStmt(s Stmt) error {
	switch s := s.(type) {
	case *BlockStmt:
		return g.genBlockStmt(s)

	case *DeclStmt:
		class := ir.ClassGPR
		if s.Float {
			class = ir.ClassFPR
		}
		r, err := g.declare(s.Name, class, s.Line)
		if err != nil {
			return err
		}
		if s.Init != nil {
			v, err := g.genExpr(s.Init)
			if err != nil {
				return err
			}
			g.move(r, v)
		} else if s.Float {
			g.move(r, g.floatNum(0))
		} else {
			g.cur().LI(r, 0)
		}
		return nil

	case *AssignStmt:
		val, err := g.genExpr(s.Value)
		if err != nil {
			return err
		}
		if s.Op != Assign {
			old, err := g.loadLValue(s.Target)
			if err != nil {
				return err
			}
			if isF(old) || isF(val) {
				t := g.f.NewReg(ir.ClassFPR)
				op := ir.OpFAdd
				if s.Op == MinusAssign {
					op = ir.OpFSub
				}
				a, b := g.toFloat(old), g.toFloat(val)
				g.cur().Emit(op, func(i *ir.Instr) { i.Def = t; i.A = a; i.B = b })
				val = t
			} else {
				t := g.f.NewReg(ir.ClassGPR)
				op := ir.OpAdd
				if s.Op == MinusAssign {
					op = ir.OpSub
				}
				g.cur().Op2(op, t, old, val)
				val = t
			}
		}
		return g.storeLValue(s.Target, val)

	case *IncDecStmt:
		old, err := g.loadLValue(s.Target)
		if err != nil {
			return err
		}
		d := int64(1)
		if s.Dec {
			d = -1
		}
		if isF(old) {
			one := g.floatNum(float64(d))
			t := g.f.NewReg(ir.ClassFPR)
			g.cur().Emit(ir.OpFAdd, func(i *ir.Instr) { i.Def = t; i.A = old; i.B = one })
			return g.storeLValue(s.Target, t)
		}
		t := g.f.NewReg(ir.ClassGPR)
		g.cur().AI(t, old, d)
		return g.storeLValue(s.Target, t)

	case *IfStmt:
		elseLbl := g.fresh("else")
		endLbl := g.fresh("endif")
		target := endLbl
		if s.Else != nil {
			target = elseLbl
		}
		if err := g.genCondJump(s.Cond, target, false); err != nil {
			return err
		}
		if err := g.genStmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			g.jumpTo(endLbl)
			g.block(elseLbl)
			if err := g.genStmt(s.Else); err != nil {
				return err
			}
		}
		g.block(endLbl)
		return nil

	case *WhileStmt:
		head := g.fresh("while")
		exit := g.fresh("wend")
		g.block(head)
		if err := g.genCondJump(s.Cond, exit, false); err != nil {
			return err
		}
		g.loops = append(g.loops, loopCtx{breakLbl: exit, continueLbl: head})
		err := g.genStmt(s.Body)
		g.loops = g.loops[:len(g.loops)-1]
		if err != nil {
			return err
		}
		g.jumpTo(head)
		g.block(exit)
		return nil

	case *DoWhileStmt:
		head := g.fresh("do")
		cond := g.fresh("docond")
		exit := g.fresh("dend")
		g.block(head)
		g.loops = append(g.loops, loopCtx{breakLbl: exit, continueLbl: cond})
		err := g.genStmt(s.Body)
		g.loops = g.loops[:len(g.loops)-1]
		if err != nil {
			return err
		}
		g.block(cond)
		if err := g.genCondJump(s.Cond, head, true); err != nil {
			return err
		}
		g.block(exit)
		return nil

	case *ForStmt:
		if s.Init != nil {
			// The init clause may declare a variable scoped to the loop.
			g.pushScope()
			defer g.popScope()
			if err := g.genStmt(s.Init); err != nil {
				return err
			}
		}
		head := g.fresh("for")
		post := g.fresh("fpost")
		exit := g.fresh("fend")
		g.block(head)
		if s.Cond != nil {
			if err := g.genCondJump(s.Cond, exit, false); err != nil {
				return err
			}
		}
		g.loops = append(g.loops, loopCtx{breakLbl: exit, continueLbl: post})
		err := g.genStmt(s.Body)
		g.loops = g.loops[:len(g.loops)-1]
		if err != nil {
			return err
		}
		g.block(post)
		if s.Post != nil {
			if err := g.genStmt(s.Post); err != nil {
				return err
			}
		}
		g.jumpTo(head)
		g.block(exit)
		return nil

	case *ReturnStmt:
		if g.fn.Void {
			if s.Value != nil {
				return errAt(s.Line, 1, "void function %q returns a value", g.fn.Name)
			}
			g.cur().Ret(ir.NoReg)
			g.b.Cur = nil
			return nil
		}
		if s.Value == nil {
			return errAt(s.Line, 1, "function %q must return a value", g.fn.Name)
		}
		v, err := g.genExpr(s.Value)
		if err != nil {
			return err
		}
		g.cur().Ret(g.toInt(v))
		g.b.Cur = nil
		return nil

	case *BreakStmt:
		if len(g.loops) == 0 {
			return errAt(s.Line, 1, "break outside a loop")
		}
		g.jumpTo(g.loops[len(g.loops)-1].breakLbl)
		return nil

	case *ContinueStmt:
		if len(g.loops) == 0 {
			return errAt(s.Line, 1, "continue outside a loop")
		}
		g.jumpTo(g.loops[len(g.loops)-1].continueLbl)
		return nil

	case *ExprStmt:
		if call, ok := s.X.(*CallExpr); ok {
			_, err := g.genCall(call, false)
			return err
		}
		_, err := g.genExpr(s.X)
		return err
	}
	return fmt.Errorf("minic: internal: unknown statement %T", s)
}

// jumpTo unconditionally branches to lbl unless the current block is
// already terminated (e.g. by a return inside the loop body).
func (g *gen) jumpTo(lbl string) {
	if g.b.Cur != nil && g.b.Cur.Terminator() != nil {
		return
	}
	g.cur().B(lbl)
	g.b.Cur = nil
}

// move copies val into dst, coercing across register classes.
func (g *gen) move(dst, val ir.Reg) {
	if isF(dst) {
		v := g.toFloat(val)
		g.cur().Emit(ir.OpFMove, func(i *ir.Instr) { i.Def = dst; i.A = v })
		return
	}
	g.cur().LR(dst, g.toInt(val))
}

// loadLValue reads the current value of an lvalue.
func (g *gen) loadLValue(lv *LValue) (ir.Reg, error) {
	return g.genExprVar(lv.Name, lv.Index, lv.Line)
}

// storeLValue writes val into the lvalue. Memory holds ints only, so
// float values are truncated on the way into globals and arrays.
func (g *gen) storeLValue(lv *LValue, val ir.Reg) error {
	if lv.Index == nil {
		if r, ok := g.lookup(lv.Name); ok {
			g.move(r, val)
			return nil
		}
		gd := g.globals[lv.Name]
		if gd == nil {
			return errAt(lv.Line, 1, "undefined variable %q", lv.Name)
		}
		if gd.Size > 0 {
			return errAt(lv.Line, 1, "array %q assigned without an index", lv.Name)
		}
		g.cur().Store(lv.Name, ir.NoReg, 0, g.toInt(val))
		return nil
	}
	gd := g.globals[lv.Name]
	if gd == nil {
		if _, ok := g.lookup(lv.Name); ok {
			return errAt(lv.Line, 1, "%q is not an array", lv.Name)
		}
		return errAt(lv.Line, 1, "undefined array %q", lv.Name)
	}
	if gd.Size == 0 {
		return errAt(lv.Line, 1, "%q is not an array", lv.Name)
	}
	addr, err := g.genIndexAddr(lv.Index)
	if err != nil {
		return err
	}
	g.cur().Store(lv.Name, addr, 0, g.toInt(val))
	return nil
}

// genIndexAddr computes a byte offset register for an element index.
func (g *gen) genIndexAddr(idx Expr) (ir.Reg, error) {
	// Constant indices become plain displacements off a zero register
	// only if we had one; scaling a constant at compile time is simpler.
	if n, ok := idx.(*NumExpr); ok {
		r := g.f.NewReg(ir.ClassGPR)
		g.cur().LI(r, n.Value*ir.WordSize)
		return r, nil
	}
	v, err := g.genExpr(idx)
	if err != nil {
		return ir.NoReg, err
	}
	r := g.f.NewReg(ir.ClassGPR)
	g.cur().OpI(ir.OpShlI, r, g.toInt(v), 2)
	return r, nil
}

func (g *gen) genExprVar(name string, index Expr, line int) (ir.Reg, error) {
	if index == nil {
		if r, ok := g.lookup(name); ok {
			return r, nil
		}
		gd := g.globals[name]
		if gd == nil {
			return ir.NoReg, errAt(line, 1, "undefined variable %q", name)
		}
		if gd.Size > 0 {
			return ir.NoReg, errAt(line, 1, "array %q read without an index", name)
		}
		r := g.f.NewReg(ir.ClassGPR)
		g.cur().Load(r, name, ir.NoReg, 0)
		return r, nil
	}
	gd := g.globals[name]
	if gd == nil || gd.Size == 0 {
		return ir.NoReg, errAt(line, 1, "%q is not an array", name)
	}
	addr, err := g.genIndexAddr(index)
	if err != nil {
		return ir.NoReg, err
	}
	r := g.f.NewReg(ir.ClassGPR)
	g.cur().Load(r, name, addr, 0)
	return r, nil
}

var binOps = map[Kind]ir.Op{
	Plus: ir.OpAdd, Minus: ir.OpSub, Star: ir.OpMul, Slash: ir.OpDiv,
	Percent: ir.OpRem, Amp: ir.OpAnd, Pipe: ir.OpOr, Caret: ir.OpXor,
	Shl: ir.OpShl, Shr: ir.OpShr,
}

func isCompare(k Kind) bool {
	switch k {
	case Lt, Le, Gt, Ge, EqEq, NotEq:
		return true
	}
	return false
}

func isLogical(k Kind) bool { return k == AndAnd || k == OrOr }

func (g *gen) genExpr(e Expr) (ir.Reg, error) {
	switch e := e.(type) {
	case *NumExpr:
		r := g.f.NewReg(ir.ClassGPR)
		g.cur().LI(r, e.Value)
		return r, nil

	case *FNumExpr:
		return g.floatNum(e.Value), nil

	case *VarExpr:
		return g.genExprVar(e.Name, nil, e.Line)

	case *IndexExpr:
		return g.genExprVar(e.Name, e.Index, e.Line)

	case *UnaryExpr:
		if e.Op == Not {
			return g.genBool(e)
		}
		x, err := g.genExpr(e.X)
		if err != nil {
			return ir.NoReg, err
		}
		if e.Op == Minus && isF(x) {
			r := g.f.NewReg(ir.ClassFPR)
			g.cur().Emit(ir.OpFNeg, func(i *ir.Instr) { i.Def = r; i.A = x })
			return r, nil
		}
		x = g.toInt(x)
		r := g.f.NewReg(ir.ClassGPR)
		if e.Op == Minus {
			g.cur().Emit(ir.OpNeg, func(i *ir.Instr) { i.Def = r; i.A = x })
		} else {
			g.cur().Emit(ir.OpNot, func(i *ir.Instr) { i.Def = r; i.A = x })
		}
		return r, nil

	case *BinExpr:
		if isCompare(e.Op) || isLogical(e.Op) {
			return g.genBool(e)
		}
		op, ok := binOps[e.Op]
		if !ok {
			return ir.NoReg, errAt(e.Line, 1, "unsupported operator %s", e.Op)
		}
		x, err := g.genExpr(e.X)
		if err != nil {
			return ir.NoReg, err
		}
		// Constant right operands use the immediate forms, matching
		// the paper's AI-style code.
		if n, isNum := e.Y.(*NumExpr); isNum && !isF(x) {
			if iop, okI := immOp(op); okI {
				r := g.f.NewReg(ir.ClassGPR)
				imm := n.Value
				if op == ir.OpSub {
					imm = -imm
				}
				g.cur().OpI(iop, r, x, imm)
				return r, nil
			}
		}
		y, err := g.genExpr(e.Y)
		if err != nil {
			return ir.NoReg, err
		}
		if isF(x) || isF(y) {
			if fop, okF := floatOp(op); okF {
				a, b := g.toFloat(x), g.toFloat(y)
				r := g.f.NewReg(ir.ClassFPR)
				g.cur().Emit(fop, func(i *ir.Instr) { i.Def = r; i.A = a; i.B = b })
				return r, nil
			}
			// Integer-only operators truncate their float operands.
			x, y = g.toInt(x), g.toInt(y)
		}
		r := g.f.NewReg(ir.ClassGPR)
		g.cur().Op2(op, r, x, y)
		return r, nil

	case *CallExpr:
		return g.genCall(e, true)
	}
	return ir.NoReg, fmt.Errorf("minic: internal: unknown expression %T", e)
}

// floatOp maps an integer opcode to its float counterpart when the
// operator exists on floats.
func floatOp(op ir.Op) (ir.Op, bool) {
	switch op {
	case ir.OpAdd:
		return ir.OpFAdd, true
	case ir.OpSub:
		return ir.OpFSub, true
	case ir.OpMul:
		return ir.OpFMul, true
	case ir.OpDiv:
		return ir.OpFDiv, true
	}
	return op, false
}

// immOp maps a register-register opcode to its immediate form when one
// exists (subtraction maps to AddI with a negated immediate).
func immOp(op ir.Op) (ir.Op, bool) {
	switch op {
	case ir.OpAdd, ir.OpSub:
		return ir.OpAddI, true
	case ir.OpMul:
		return ir.OpMulI, true
	case ir.OpAnd:
		return ir.OpAndI, true
	case ir.OpOr:
		return ir.OpOrI, true
	case ir.OpXor:
		return ir.OpXorI, true
	case ir.OpShl:
		return ir.OpShlI, true
	case ir.OpShr:
		return ir.OpShrI, true
	}
	return op, false
}

func (g *gen) genCall(e *CallExpr, wantValue bool) (ir.Reg, error) {
	var args []ir.Reg
	for _, a := range e.Args {
		r, err := g.genExpr(a)
		if err != nil {
			return ir.NoReg, err
		}
		// All call interfaces (including print) take ints.
		args = append(args, g.toInt(r))
	}
	switch e.Name {
	case "print", "putchar":
		if len(args) != 1 {
			return ir.NoReg, errAt(e.Line, 1, "%s takes one argument", e.Name)
		}
		if wantValue {
			return ir.NoReg, errAt(e.Line, 1, "%s returns no value", e.Name)
		}
		g.cur().Call(ir.NoReg, e.Name, args...)
		return ir.NoReg, nil
	case "abort":
		if len(args) != 0 {
			return ir.NoReg, errAt(e.Line, 1, "abort takes no arguments")
		}
		g.cur().Call(ir.NoReg, "abort")
		return ir.NoReg, nil
	}
	fn := g.funcs[e.Name]
	if fn == nil {
		return ir.NoReg, errAt(e.Line, 1, "undefined function %q", e.Name)
	}
	if len(args) != len(fn.Params) {
		return ir.NoReg, errAt(e.Line, 1, "%q takes %d arguments, got %d", e.Name, len(fn.Params), len(args))
	}
	if fn.Void {
		if wantValue {
			return ir.NoReg, errAt(e.Line, 1, "void function %q used as a value", e.Name)
		}
		g.cur().Call(ir.NoReg, e.Name, args...)
		return ir.NoReg, nil
	}
	r := g.f.NewReg(ir.ClassGPR)
	g.cur().Call(r, e.Name, args...)
	return r, nil
}

// genBool materialises a boolean expression as 0 or 1.
func (g *gen) genBool(e Expr) (ir.Reg, error) {
	r := g.f.NewReg(ir.ClassGPR)
	end := g.fresh("bend")
	g.cur().LI(r, 1)
	if err := g.genCondJump(e, end, true); err != nil {
		return ir.NoReg, err
	}
	g.cur().LI(r, 0)
	g.block(end)
	return r, nil
}

// genCondJump emits code that evaluates cond and branches to lbl when the
// condition equals want; otherwise control falls through.
func (g *gen) genCondJump(cond Expr, lbl string, want bool) error {
	switch e := cond.(type) {
	case *BinExpr:
		if isCompare(e.Op) {
			x, err := g.genExpr(e.X)
			if err != nil {
				return err
			}
			cr := g.f.NewReg(ir.ClassCR)
			if n, isNum := e.Y.(*NumExpr); isNum && !isF(x) {
				g.cur().CmpI(cr, x, n.Value)
			} else {
				y, err := g.genExpr(e.Y)
				if err != nil {
					return err
				}
				if isF(x) || isF(y) {
					// FCmp sets the same LT/GT/EQ bits as Cmp, so the
					// branch emission below is shared.
					a, b := g.toFloat(x), g.toFloat(y)
					g.cur().Emit(ir.OpFCmp, func(i *ir.Instr) { i.Def = cr; i.A = a; i.B = b })
				} else {
					g.cur().Cmp(cr, x, y)
				}
			}
			g.emitCmpBranch(e.Op, cr, lbl, want)
			return nil
		}
		switch e.Op {
		case AndAnd:
			if want {
				// Jump to lbl when both are true.
				skip := g.fresh("and")
				if err := g.genCondJump(e.X, skip, false); err != nil {
					return err
				}
				if err := g.genCondJump(e.Y, lbl, true); err != nil {
					return err
				}
				g.block(skip)
				return nil
			}
			// Jump to lbl when either is false.
			if err := g.genCondJump(e.X, lbl, false); err != nil {
				return err
			}
			return g.genCondJump(e.Y, lbl, false)
		case OrOr:
			if want {
				if err := g.genCondJump(e.X, lbl, true); err != nil {
					return err
				}
				return g.genCondJump(e.Y, lbl, true)
			}
			skip := g.fresh("or")
			if err := g.genCondJump(e.X, skip, true); err != nil {
				return err
			}
			if err := g.genCondJump(e.Y, lbl, false); err != nil {
				return err
			}
			g.block(skip)
			return nil
		}
	case *UnaryExpr:
		if e.Op == Not {
			return g.genCondJump(e.X, lbl, !want)
		}
	}
	// Generic: compare against zero; "true" means non-zero.
	v, err := g.genExpr(cond)
	if err != nil {
		return err
	}
	cr := g.f.NewReg(ir.ClassCR)
	if isF(v) {
		zero := g.floatNum(0)
		g.cur().Emit(ir.OpFCmp, func(i *ir.Instr) { i.Def = cr; i.A = v; i.B = zero })
	} else {
		g.cur().CmpI(cr, v, 0)
	}
	if want {
		g.emitBranch(lbl, cr, ir.BitEQ, false) // non-zero: eq clear
	} else {
		g.emitBranch(lbl, cr, ir.BitEQ, true)
	}
	return nil
}

// emitCmpBranch branches to lbl when (x OP y) == want, given the compare
// result in cr.
func (g *gen) emitCmpBranch(op Kind, cr ir.Reg, lbl string, want bool) {
	// For each operator: the bit to test and whether the operator is
	// true when the bit is set.
	var bit ir.CRBit
	var onSet bool
	switch op {
	case Lt:
		bit, onSet = ir.BitLT, true
	case Ge:
		bit, onSet = ir.BitLT, false
	case Gt:
		bit, onSet = ir.BitGT, true
	case Le:
		bit, onSet = ir.BitGT, false
	case EqEq:
		bit, onSet = ir.BitEQ, true
	case NotEq:
		bit, onSet = ir.BitEQ, false
	}
	g.emitBranch(lbl, cr, bit, onSet == want)
}

// emitBranch emits BT/BF and leaves the builder in a fresh fallthrough
// block.
func (g *gen) emitBranch(lbl string, cr ir.Reg, bit ir.CRBit, onTrue bool) {
	if onTrue {
		g.cur().BT(lbl, cr, bit)
	} else {
		g.cur().BF(lbl, cr, bit)
	}
	g.b.Block("")
}
