package minic_test

import (
	"testing"

	"gsched/internal/minic"
)

// FuzzCompileC feeds arbitrary source to the mini-C front end. The
// compiler must never panic: it either reports a compile error or
// produces a program that passes the ir validator. Run with
//
//	go test -fuzz=FuzzCompileC ./internal/minic
func FuzzCompileC(f *testing.F) {
	f.Add("int main(int a, int b) { return a + b; }")
	f.Add("int g[8] = {1, 2, 3};\nint s = 4;\nint main(int a, int b) { g[((a % 8) + 8) % 8] = s; return g[0]; }")
	f.Add("int main(int a, int b) { float x = 1.5; float y = x * 2.25; if (y > a) { return 1; } return 0; }")
	f.Add("int helper(int x, int y) { return x * y; }\nint main(int a, int b) { int v = 0; for (int i = 0; i < 5; i++) { v += helper(i, a); } return v; }")
	f.Add("int main(int a, int b) { int w = 0; int acc = 0; while (w < 4) { acc += w; w = w + 1; } do { acc--; } while (acc > 10); return acc; }")
	f.Add("void side(int x) { print(x); }\nint main(int a, int b) { if (a > 0 && b != 3 || !a) { side(a); } return a | b; }")
	f.Add("int main(") // parse error
	f.Add("float bad = 1.0;")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := minic.Compile(src)
		if err != nil {
			return // rejecting the input is fine; panicking is not
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("compiled program fails validation: %v\nsource:\n%s", err, src)
		}
	})
}
