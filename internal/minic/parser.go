package minic

// Recursive descent parser with conventional C precedence:
//
//	||  &&  |  ^  &  == !=  < <= > >=  << >>  + -  * / %  unary  primary

type parserState struct {
	toks []Token
	pos  int
}

// ParseSource lexes and parses a compilation unit.
func ParseSource(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parserState{toks: toks}
	prog := &Program{}
	for !p.at(EOF) {
		if err := p.parseTopLevel(prog); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

func (p *parserState) cur() Token     { return p.toks[p.pos] }
func (p *parserState) at(k Kind) bool { return p.cur().Kind == k }

func (p *parserState) next() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *parserState) expect(k Kind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, errAt(t.Line, t.Col, "expected %s, found %s", k, t)
	}
	return p.next(), nil
}

func (p *parserState) parseTopLevel(prog *Program) error {
	t := p.cur()
	isVoid := t.Kind == KwVoid
	if t.Kind == KwFloat {
		return errAt(t.Line, t.Col, "float is only allowed for locals")
	}
	if t.Kind != KwInt && t.Kind != KwVoid {
		return errAt(t.Line, t.Col, "expected 'int' or 'void' declaration, found %s", t)
	}
	p.next()
	name, err := p.expect(IDENT)
	if err != nil {
		return err
	}
	switch p.cur().Kind {
	case LParen:
		fn, err := p.parseFuncRest(name.Text, isVoid, name.Line)
		if err != nil {
			return err
		}
		prog.Funcs = append(prog.Funcs, fn)
		return nil
	default:
		if isVoid {
			return errAt(name.Line, name.Col, "void globals are not allowed")
		}
		g, err := p.parseGlobalRest(name.Text, name.Line)
		if err != nil {
			return err
		}
		prog.Globals = append(prog.Globals, g)
		return nil
	}
}

func (p *parserState) parseGlobalRest(name string, line int) (*GlobalDecl, error) {
	g := &GlobalDecl{Name: name, Line: line}
	if p.at(LBracket) {
		p.next()
		n, err := p.expect(NUMBER)
		if err != nil {
			return nil, err
		}
		if n.Num <= 0 {
			return nil, errAt(n.Line, n.Col, "array size must be positive")
		}
		g.Size = n.Num
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
	}
	if p.at(Assign) {
		p.next()
		if g.Size > 0 {
			if _, err := p.expect(LBrace); err != nil {
				return nil, err
			}
			for !p.at(RBrace) {
				v, err := p.parseSignedNumber()
				if err != nil {
					return nil, err
				}
				g.Init = append(g.Init, v)
				if p.at(Comma) {
					p.next()
					continue
				}
				break
			}
			if _, err := p.expect(RBrace); err != nil {
				return nil, err
			}
			if int64(len(g.Init)) > g.Size {
				return nil, errAt(line, 1, "%d initialisers exceed array size %d", len(g.Init), g.Size)
			}
		} else {
			v, err := p.parseSignedNumber()
			if err != nil {
				return nil, err
			}
			g.Init = []int64{v}
		}
	}
	_, err := p.expect(Semi)
	return g, err
}

func (p *parserState) parseSignedNumber() (int64, error) {
	neg := false
	if p.at(Minus) {
		p.next()
		neg = true
	}
	n, err := p.expect(NUMBER)
	if err != nil {
		return 0, err
	}
	if neg {
		return -n.Num, nil
	}
	return n.Num, nil
}

func (p *parserState) parseFuncRest(name string, isVoid bool, line int) (*FuncDecl, error) {
	fn := &FuncDecl{Name: name, Void: isVoid, Line: line}
	if err := p.parseFuncSig(fn); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

// parseFuncSig parses the parameter list "(...)" into fn, stopping
// before the body so the streaming scan can skip it.
func (p *parserState) parseFuncSig(fn *FuncDecl) error {
	if _, err := p.expect(LParen); err != nil {
		return err
	}
	if p.at(KwVoid) && p.toks[p.pos+1].Kind == RParen {
		p.next()
	}
	for !p.at(RParen) {
		if _, err := p.expect(KwInt); err != nil {
			return err
		}
		id, err := p.expect(IDENT)
		if err != nil {
			return err
		}
		fn.Params = append(fn.Params, id.Text)
		if p.at(Comma) {
			p.next()
			continue
		}
		break
	}
	_, err := p.expect(RParen)
	return err
}

// skipBlock advances past a balanced-brace block without parsing it,
// returning the token index of its opening brace.
func (p *parserState) skipBlock() (int, error) {
	start := p.pos
	if _, err := p.expect(LBrace); err != nil {
		return 0, err
	}
	depth := 1
	for depth > 0 {
		t := p.next()
		switch t.Kind {
		case LBrace:
			depth++
		case RBrace:
			depth--
		case EOF:
			return 0, errAt(t.Line, t.Col, "unexpected end of file inside block")
		}
	}
	return start, nil
}

func (p *parserState) parseBlock() (*BlockStmt, error) {
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	b := &BlockStmt{}
	for !p.at(RBrace) {
		if p.at(EOF) {
			t := p.cur()
			return nil, errAt(t.Line, t.Col, "unexpected end of file inside block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next()
	return b, nil
}

func (p *parserState) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case LBrace:
		return p.parseBlock()
	case KwInt, KwFloat:
		p.next()
		id, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		d := &DeclStmt{Name: id.Text, Float: t.Kind == KwFloat, Line: id.Line}
		if p.at(Assign) {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
		_, err = p.expect(Semi)
		return d, err
	case KwIf:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s := &IfStmt{Cond: cond, Then: then}
		if p.at(KwElse) {
			p.next()
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			s.Else = els
		}
		return s, nil
	case KwWhile:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil
	case KwDo:
		p.next()
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(KwWhile); err != nil {
			return nil, err
		}
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		_, err = p.expect(Semi)
		return &DoWhileStmt{Body: body, Cond: cond}, err
	case KwFor:
		return p.parseFor()
	case KwReturn:
		p.next()
		s := &ReturnStmt{Line: t.Line}
		if !p.at(Semi) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Value = e
		}
		_, err := p.expect(Semi)
		return s, err
	case KwBreak:
		p.next()
		_, err := p.expect(Semi)
		return &BreakStmt{Line: t.Line}, err
	case KwContinue:
		p.next()
		_, err := p.expect(Semi)
		return &ContinueStmt{Line: t.Line}, err
	case Semi:
		p.next()
		return &BlockStmt{}, nil
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(Semi)
		return s, err
	}
}

// parseSimpleStmt parses assignment, ++/--, or an expression statement,
// without the trailing semicolon (shared by for-clauses).
func (p *parserState) parseSimpleStmt() (Stmt, error) {
	t := p.cur()
	if t.Kind == IDENT {
		// Lookahead decides between lvalue statements and expressions.
		save := p.pos
		p.next()
		var idx Expr
		if p.at(LBracket) {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			idx = e
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
		}
		lv := &LValue{Name: t.Text, Index: idx, Line: t.Line}
		switch p.cur().Kind {
		case Assign, PlusAssign, MinusAssign:
			op := p.next().Kind
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{Target: lv, Op: op, Value: v, Line: t.Line}, nil
		case PlusPlus, MinusMinus:
			dec := p.next().Kind == MinusMinus
			return &IncDecStmt{Target: lv, Dec: dec, Line: t.Line}, nil
		}
		p.pos = save
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{X: e}, nil
}

func (p *parserState) parseFor() (Stmt, error) {
	p.next() // for
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	s := &ForStmt{}
	if !p.at(Semi) {
		if p.at(KwInt) || p.at(KwFloat) {
			isFloat := p.at(KwFloat)
			p.next()
			id, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			d := &DeclStmt{Name: id.Text, Float: isFloat, Line: id.Line}
			if p.at(Assign) {
				p.next()
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				d.Init = e
			}
			s.Init = d
		} else {
			st, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			s.Init = st
		}
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	if !p.at(Semi) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Cond = e
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	if !p.at(RParen) {
		st, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		s.Post = st
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// Binary precedence levels, loosest first.
var precLevels = [][]Kind{
	{OrOr},
	{AndAnd},
	{Pipe},
	{Caret},
	{Amp},
	{EqEq, NotEq},
	{Lt, Le, Gt, Ge},
	{Shl, Shr},
	{Plus, Minus},
	{Star, Slash, Percent},
}

func (p *parserState) parseExpr() (Expr, error) { return p.parseBin(0) }

func (p *parserState) parseBin(level int) (Expr, error) {
	if level == len(precLevels) {
		return p.parseUnary()
	}
	x, err := p.parseBin(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		found := false
		for _, k := range precLevels[level] {
			if t.Kind == k {
				found = true
				break
			}
		}
		if !found {
			return x, nil
		}
		p.next()
		y, err := p.parseBin(level + 1)
		if err != nil {
			return nil, err
		}
		x = &BinExpr{Op: t.Kind, X: x, Y: y, Line: t.Line}
	}
}

func (p *parserState) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case Minus, Not, Tilde:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.Kind, X: x, Line: t.Line}, nil
	}
	return p.parsePrimary()
}

func (p *parserState) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case NUMBER:
		p.next()
		return &NumExpr{Value: t.Num, Line: t.Line}, nil
	case FNUMBER:
		p.next()
		return &FNumExpr{Value: t.FNum, Line: t.Line}, nil
	case LParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(RParen)
		return e, err
	case IDENT:
		p.next()
		switch p.cur().Kind {
		case LParen:
			p.next()
			call := &CallExpr{Name: t.Text, Line: t.Line}
			for !p.at(RParen) {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if p.at(Comma) {
					p.next()
					continue
				}
				break
			}
			_, err := p.expect(RParen)
			return call, err
		case LBracket:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Name: t.Text, Index: idx, Line: t.Line}, nil
		}
		return &VarExpr{Name: t.Text, Line: t.Line}, nil
	}
	return nil, errAt(t.Line, t.Col, "expected expression, found %s", t)
}
