package minic

// The AST mirrors the accepted C subset. Position fields reference the
// first token of the node for error reporting.

// Program is a parsed compilation unit.
type Program struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl declares a global scalar (Size == 0) or array (Size > 0),
// optionally initialised.
type GlobalDecl struct {
	Name string
	Size int64   // 0 for scalar; >0 for array length in elements
	Init []int64 // scalar: one value; array: leading elements
	Line int
}

// FuncDecl declares a function. Void functions have Void == true.
type FuncDecl struct {
	Name   string
	Params []string
	Void   bool
	Body   *BlockStmt
	Line   int
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// BlockStmt is { stmts... }.
type BlockStmt struct {
	Stmts []Stmt
}

// DeclStmt declares a local: int name = init; or float name = init;
// (init may be nil).
type DeclStmt struct {
	Name  string
	Float bool
	Init  Expr
	Line  int
}

// AssignStmt stores into a variable or array element. Op is Assign,
// PlusAssign or MinusAssign.
type AssignStmt struct {
	Target *LValue
	Op     Kind
	Value  Expr
	Line   int
}

// IncDecStmt is x++ / x-- / a[i]++ / a[i]--.
type IncDecStmt struct {
	Target *LValue
	Dec    bool
	Line   int
}

// LValue is an assignable location: a named variable, or array[index].
type LValue struct {
	Name  string
	Index Expr // nil for scalars
	Line  int
}

// IfStmt is if (cond) then [else els].
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is while (cond) body.
type WhileStmt struct {
	Cond Expr
	Body Stmt
}

// DoWhileStmt is do body while (cond);.
type DoWhileStmt struct {
	Body Stmt
	Cond Expr
}

// ForStmt is for (init; cond; post) body; any clause may be nil.
type ForStmt struct {
	Init Stmt // DeclStmt, AssignStmt or IncDecStmt
	Cond Expr
	Post Stmt
	Body Stmt
}

// ReturnStmt returns Value (nil for void returns).
type ReturnStmt struct {
	Value Expr
	Line  int
}

// BreakStmt / ContinueStmt control the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Line int }

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	X Expr
}

func (*BlockStmt) stmt()    {}
func (*DeclStmt) stmt()     {}
func (*AssignStmt) stmt()   {}
func (*IncDecStmt) stmt()   {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*DoWhileStmt) stmt()  {}
func (*ForStmt) stmt()      {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*ExprStmt) stmt()     {}

// Expr is an expression node.
type Expr interface{ expr() }

// NumExpr is an integer literal.
type NumExpr struct {
	Value int64
	Line  int
}

// FNumExpr is a float literal.
type FNumExpr struct {
	Value float64
	Line  int
}

// VarExpr reads a scalar variable (local, parameter, or global).
type VarExpr struct {
	Name string
	Line int
}

// IndexExpr reads an array element.
type IndexExpr struct {
	Name  string
	Index Expr
	Line  int
}

// UnaryExpr applies Minus, Not or Tilde.
type UnaryExpr struct {
	Op   Kind
	X    Expr
	Line int
}

// BinExpr applies a binary operator, including comparisons and the
// short-circuit AndAnd / OrOr.
type BinExpr struct {
	Op   Kind
	X, Y Expr
	Line int
}

// CallExpr calls a function.
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

func (*NumExpr) expr()   {}
func (*FNumExpr) expr()  {}
func (*VarExpr) expr()   {}
func (*IndexExpr) expr() {}
func (*UnaryExpr) expr() {}
func (*BinExpr) expr()   {}
func (*CallExpr) expr()  {}
