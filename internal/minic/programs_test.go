package minic

import (
	"fmt"
	"testing"
	"testing/quick"

	"gsched/internal/sim"
)

// Realistic whole programs, each checked against a Go reference.

func TestGCD(t *testing.T) {
	src := `
int gcd(int a, int b) {
    while (b != 0) {
        int tmp = a % b;
        a = b;
        b = tmp;
    }
    if (a < 0) return 0 - a;
    return a;
}`
	ref := func(a, b int64) int64 {
		for b != 0 {
			a, b = b, a%b
		}
		if a < 0 {
			return -a
		}
		return a
	}
	for _, tc := range [][2]int64{{12, 18}, {17, 5}, {0, 7}, {48, 36}, {-12, 18}} {
		expectRet(t, src, "gcd", ref(tc[0], tc[1]), tc[0], tc[1])
	}
}

func TestInsertionSortProgram(t *testing.T) {
	src := `
int a[32] = {9, -4, 7, 0, 3, 3, 12, -8, 1, 5};
int sortsum(int n) {
    for (int i = 1; i < n; i++) {
        int x = a[i];
        int j = i - 1;
        while (j >= 0 && a[j] > x) {
            a[j + 1] = a[j];
            j = j - 1;
        }
        a[j + 1] = x;
    }
    // Weighted checksum proves the order, not just the multiset.
    int h = 0;
    for (int i = 0; i < n; i++) h = h * 31 + a[i];
    return h;
}`
	vals := []int64{9, -4, 7, 0, 3, 3, 12, -8, 1, 5}
	sorted := append([]int64(nil), vals...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	var want int64
	for _, v := range sorted {
		want = want*31 + v
	}
	expectRet(t, src, "sortsum", want, int64(len(vals)))
}

func TestCollatz(t *testing.T) {
	src := `
int steps(int n) {
    int c = 0;
    while (n != 1) {
        if (n % 2 == 0) n = n / 2;
        else n = 3 * n + 1;
        c++;
    }
    return c;
}`
	ref := func(n int64) int64 {
		c := int64(0)
		for n != 1 {
			if n%2 == 0 {
				n /= 2
			} else {
				n = 3*n + 1
			}
			c++
		}
		return c
	}
	for _, n := range []int64{1, 2, 6, 7, 27, 97} {
		expectRet(t, src, "steps", ref(n), n)
	}
}

func TestMatrixMultiply(t *testing.T) {
	src := `
int A[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
int B[16] = {2, 0, 1, 3, 1, 1, 0, 2, 4, 2, 2, 0, 0, 3, 1, 1};
int C[16];
int mm(int n) {
    for (int i = 0; i < n; i++)
        for (int j = 0; j < n; j++) {
            int acc = 0;
            for (int k = 0; k < n; k++)
                acc += A[i * n + k] * B[k * n + j];
            C[i * n + j] = acc;
        }
    int h = 0;
    for (int i = 0; i < n * n; i++) h = h * 7 + C[i];
    return h;
}`
	av := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	bv := []int64{2, 0, 1, 3, 1, 1, 0, 2, 4, 2, 2, 0, 0, 3, 1, 1}
	cv := make([]int64, 16)
	n := 4
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc int64
			for k := 0; k < n; k++ {
				acc += av[i*n+k] * bv[k*n+j]
			}
			cv[i*n+j] = acc
		}
	}
	var want int64
	for _, v := range cv {
		want = want*7 + v
	}
	expectRet(t, src, "mm", want, int64(n))
}

func TestBinarySearch(t *testing.T) {
	src := `
int a[16] = {-9, -4, 0, 3, 7, 12, 15, 22, 40, 41};
int find(int n, int key) {
    int lo = 0;
    int hi = n - 1;
    while (lo <= hi) {
        int mid = (lo + hi) / 2;
        if (a[mid] == key) return mid;
        if (a[mid] < key) lo = mid + 1;
        else hi = mid - 1;
    }
    return 0 - 1;
}`
	vals := []int64{-9, -4, 0, 3, 7, 12, 15, 22, 40, 41}
	for i, v := range vals {
		expectRet(t, src, "find", int64(i), int64(len(vals)), v)
	}
	for _, miss := range []int64{-100, 1, 8, 99} {
		expectRet(t, src, "find", -1, int64(len(vals)), miss)
	}
}

// TestExpressionEvaluationMatchesGo: random arithmetic expressions over
// two variables compile to the same value Go computes. testing/quick
// feeds the operand values; a fixed expression pool covers precedence
// interactions.
func TestExpressionEvaluationMatchesGo(t *testing.T) {
	type expr struct {
		src string
		ref func(a, b int64) int64
	}
	exprs := []expr{
		{"a + b * 3", func(a, b int64) int64 { return a + b*3 }},
		{"(a + b) * 3", func(a, b int64) int64 { return (a + b) * 3 }},
		{"a - b - 1", func(a, b int64) int64 { return a - b - 1 }},
		{"a << 2 | b & 7", func(a, b int64) int64 { return a<<2 | b&7 }},
		{"a ^ b | a & b", func(a, b int64) int64 { return a ^ b | a&b }},
		{"a % 13 + b / 5", func(a, b int64) int64 { return a%13 + b/5 }},
		{"-a + ~b", func(a, b int64) int64 { return -a + ^b }},
		{"(a < b) + (a > b) * 2 + (a == b) * 4", func(a, b int64) int64 {
			v := int64(0)
			if a < b {
				v++
			}
			if a > b {
				v += 2
			}
			if a == b {
				v += 4
			}
			return v
		}},
		{"a >> 1 ^ b << 1", func(a, b int64) int64 { return a>>1 ^ b<<1 }},
	}
	progs := make([]*sim.Machine, len(exprs))
	for i, e := range exprs {
		p, err := Compile(fmt.Sprintf("int f(int a, int b) { return %s; }", e.src))
		if err != nil {
			t.Fatalf("%q: %v", e.src, err)
		}
		m, err := sim.Load(p)
		if err != nil {
			t.Fatalf("%q: %v", e.src, err)
		}
		progs[i] = m
	}
	property := func(a, b int16) bool {
		av, bv := int64(a), int64(b)
		for i, e := range exprs {
			res, err := progs[i].Run("f", []int64{av, bv}, nil, sim.Options{})
			if err != nil {
				t.Fatalf("%q (%d,%d): %v", e.src, av, bv, err)
			}
			if res.Ret != e.ref(av, bv) {
				t.Logf("%q (%d,%d) = %d, want %d", e.src, av, bv, res.Ret, e.ref(av, bv))
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeeplyNestedControlFlow(t *testing.T) {
	src := `
int f(int a, int b) {
    int r = 0;
    for (int i = 0; i < 3; i++) {
        for (int j = 0; j < 3; j++) {
            if (i == j) {
                if (a > b) r += i * 10 + j;
                else r -= i + j * 10;
            } else if (i < j) {
                while (r > 100) r -= 7;
                r += 1;
            } else {
                do { r += 2; } while (r % 2 != 0);
            }
        }
    }
    return r;
}`
	ref := func(a, b int64) int64 {
		r := int64(0)
		for i := int64(0); i < 3; i++ {
			for j := int64(0); j < 3; j++ {
				switch {
				case i == j:
					if a > b {
						r += i*10 + j
					} else {
						r -= i + j*10
					}
				case i < j:
					for r > 100 {
						r -= 7
					}
					r++
				default:
					for {
						r += 2
						if r%2 == 0 {
							break
						}
					}
				}
			}
		}
		return r
	}
	for _, tc := range [][2]int64{{5, 1}, {1, 5}, {0, 0}} {
		expectRet(t, src, "f", ref(tc[0], tc[1]), tc[0], tc[1])
	}
}

func TestPlusMinusAssignOnArrays(t *testing.T) {
	src := `
int g[4] = {10, 20, 30, 40};
int f(int i) {
    g[i] += 5;
    g[i + 1] -= 3;
    g[i]++;
    g[i + 1]--;
    return g[i] * 1000 + g[i + 1];
}`
	expectRet(t, src, "f", 16016, 0) // g[0]=10+5+1=16, g[1]=20-3-1=16
}
