package minic

import "strconv"

var keywords = map[string]Kind{
	"int": KwInt, "float": KwFloat, "void": KwVoid, "if": KwIf, "else": KwElse,
	"while": KwWhile, "for": KwFor, "do": KwDo, "return": KwReturn,
	"break": KwBreak, "continue": KwContinue,
}

// Lex tokenises src, returning all tokens including a final EOF.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	emit := func(k Kind, text string, num int64, c int) {
		toks = append(toks, Token{Kind: k, Text: text, Num: num, Line: line, Col: c})
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			col = 1
			i++
			continue
		case c == ' ' || c == '\t' || c == '\r':
			i++
			col++
			continue
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
			continue
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			i += 2
			col += 2
			for i+1 < len(src) && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
					col = 1
				} else {
					col++
				}
				i++
			}
			if i+1 >= len(src) {
				return nil, errAt(line, col, "unterminated block comment")
			}
			i += 2
			col += 2
			continue
		case isAlpha(c):
			start, startCol := i, col
			for i < len(src) && (isAlpha(src[i]) || isDigit(src[i])) {
				i++
				col++
			}
			word := src[start:i]
			if k, ok := keywords[word]; ok {
				emit(k, word, 0, startCol)
			} else {
				emit(IDENT, word, 0, startCol)
			}
			continue
		case isDigit(c):
			start, startCol := i, col
			for i < len(src) && isDigit(src[i]) {
				i++
				col++
			}
			// A dot followed by a digit continues into a float literal.
			if i+1 < len(src) && src[i] == '.' && isDigit(src[i+1]) {
				i++
				col++
				for i < len(src) && isDigit(src[i]) {
					i++
					col++
				}
				v, err := strconv.ParseFloat(src[start:i], 64)
				if err != nil {
					return nil, errAt(line, startCol, "bad float %q", src[start:i])
				}
				toks = append(toks, Token{Kind: FNUMBER, Text: src[start:i], FNum: v, Line: line, Col: startCol})
				continue
			}
			n, err := strconv.ParseInt(src[start:i], 10, 64)
			if err != nil {
				return nil, errAt(line, startCol, "bad number %q", src[start:i])
			}
			emit(NUMBER, src[start:i], n, startCol)
			continue
		}

		two := ""
		if i+1 < len(src) {
			two = src[i : i+2]
		}
		startCol := col
		put2 := func(k Kind) {
			emit(k, two, 0, startCol)
			i += 2
			col += 2
		}
		switch two {
		case "<<":
			put2(Shl)
			continue
		case ">>":
			put2(Shr)
			continue
		case "<=":
			put2(Le)
			continue
		case ">=":
			put2(Ge)
			continue
		case "==":
			put2(EqEq)
			continue
		case "!=":
			put2(NotEq)
			continue
		case "&&":
			put2(AndAnd)
			continue
		case "||":
			put2(OrOr)
			continue
		case "++":
			put2(PlusPlus)
			continue
		case "--":
			put2(MinusMinus)
			continue
		case "+=":
			put2(PlusAssign)
			continue
		case "-=":
			put2(MinusAssign)
			continue
		}

		one := map[byte]Kind{
			'(': LParen, ')': RParen, '{': LBrace, '}': RBrace,
			'[': LBracket, ']': RBracket, ';': Semi, ',': Comma,
			'=': Assign, '+': Plus, '-': Minus, '*': Star, '/': Slash,
			'%': Percent, '&': Amp, '|': Pipe, '^': Caret,
			'<': Lt, '>': Gt, '!': Not, '~': Tilde,
		}
		if k, ok := one[c]; ok {
			emit(k, string(c), 0, startCol)
			i++
			col++
			continue
		}
		return nil, errAt(line, col, "unexpected character %q", string(c))
	}
	emit(EOF, "", 0, col)
	return toks, nil
}

func isAlpha(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }
