// Package minic compiles a small C subset to the ir used by the
// scheduler. It stands in for the IBM XL C front end of the paper: the
// SPEC proxy workloads (package workload) and examples are written in
// this language, compiled to pseudo-RS/6K code, scheduled, and run on the
// simulator.
//
// The subset: global int scalars and arrays (optionally initialised),
// functions over ints, locals, assignment, arithmetic and bitwise
// operators, comparisons, short-circuit && and ||, if/else, while, for,
// do-while, break/continue, return, and calls including the print
// builtin.
package minic

import "fmt"

// Kind classifies tokens.
type Kind uint8

const (
	EOF Kind = iota
	IDENT
	NUMBER
	FNUMBER

	// Keywords.
	KwInt
	KwFloat
	KwVoid
	KwIf
	KwElse
	KwWhile
	KwFor
	KwDo
	KwReturn
	KwBreak
	KwContinue

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Semi
	Comma
	Assign // =
	Plus
	Minus
	Star
	Slash
	Percent
	Amp
	Pipe
	Caret
	Shl // <<
	Shr // >>
	Lt
	Gt
	Le
	Ge
	EqEq
	NotEq
	AndAnd
	OrOr
	Not // !
	Tilde
	PlusPlus
	MinusMinus
	PlusAssign  // +=
	MinusAssign // -=
)

var kindNames = map[Kind]string{
	EOF: "end of file", IDENT: "identifier", NUMBER: "number",
	FNUMBER: "float number",
	KwInt:   "'int'", KwFloat: "'float'", KwVoid: "'void'", KwIf: "'if'", KwElse: "'else'",
	KwWhile: "'while'", KwFor: "'for'", KwDo: "'do'", KwReturn: "'return'",
	KwBreak: "'break'", KwContinue: "'continue'",
	LParen: "'('", RParen: "')'", LBrace: "'{'", RBrace: "'}'",
	LBracket: "'['", RBracket: "']'", Semi: "';'", Comma: "','",
	Assign: "'='", Plus: "'+'", Minus: "'-'", Star: "'*'", Slash: "'/'",
	Percent: "'%'", Amp: "'&'", Pipe: "'|'", Caret: "'^'",
	Shl: "'<<'", Shr: "'>>'", Lt: "'<'", Gt: "'>'", Le: "'<='", Ge: "'>='",
	EqEq: "'=='", NotEq: "'!='", AndAnd: "'&&'", OrOr: "'||'",
	Not: "'!'", Tilde: "'~'", PlusPlus: "'++'", MinusMinus: "'--'",
	PlusAssign: "'+='", MinusAssign: "'-='",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

// Token is one lexical token with its source position.
type Token struct {
	Kind Kind
	Text string
	Num  int64   // value of NUMBER tokens
	FNum float64 // value of FNUMBER tokens
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT:
		return fmt.Sprintf("identifier %q", t.Text)
	case NUMBER:
		return fmt.Sprintf("number %d", t.Num)
	case FNUMBER:
		return fmt.Sprintf("number %g", t.FNum)
	}
	return t.Kind.String()
}

// Error is a compile error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string { return fmt.Sprintf("minic: %d:%d: %s", e.Line, e.Col, e.Msg) }

func errAt(line, col int, format string, args ...any) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
