package minic

// Streaming front-end: mini-C's counterpart to asm's FuncReader. The
// Reader satisfies the asm.FuncReader interface structurally
// (internal/stream adapts it into an asm.Dialect; importing asm here
// would cycle through asm's tests). The whole unit is lexed once
// (tokens are a flat array of zero-copy substrings), but ASTs are
// built and lowered one function at a time, so per-function
// allocations dominate and the AST of each function is dropped as
// soon as its ir.Func exists.
//
// Opening a source performs a scan pass that fully parses global
// declarations and function signatures while skipping function bodies
// by brace matching. That gives every function's lowering the complete
// symbol table up front (calls may reference functions declared later)
// and lets data symbols print before the first body is parsed.

import (
	"fmt"
	"io"

	"gsched/internal/ir"
)

// funcUnit is a scanned-but-not-parsed function: its signature plus
// the token index of its body's opening brace.
type funcUnit struct {
	decl *FuncDecl // Body is nil until ParseFunc reaches it
	body int
}

// Reader streams the functions of one mini-C compilation unit.
type Reader struct {
	g     *gen
	toks  []Token
	units []funcUnit
	next  int
}

// Open lexes and scans src. Global declarations are parsed completely
// (Prog().Syms is fully populated on return); function bodies are
// located but not parsed.
func Open(src string) (*Reader, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parserState{toks: toks}
	var globals []*GlobalDecl
	var units []funcUnit
	for !p.at(EOF) {
		t := p.cur()
		isVoid := t.Kind == KwVoid
		if t.Kind == KwFloat {
			return nil, errAt(t.Line, t.Col, "float is only allowed for locals")
		}
		if t.Kind != KwInt && t.Kind != KwVoid {
			return nil, errAt(t.Line, t.Col, "expected 'int' or 'void' declaration, found %s", t)
		}
		p.next()
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if p.at(LParen) {
			fn := &FuncDecl{Name: name.Text, Void: isVoid, Line: name.Line}
			if err := p.parseFuncSig(fn); err != nil {
				return nil, err
			}
			body, err := p.skipBlock()
			if err != nil {
				return nil, err
			}
			units = append(units, funcUnit{decl: fn, body: body})
			continue
		}
		if isVoid {
			return nil, errAt(name.Line, name.Col, "void globals are not allowed")
		}
		g, err := p.parseGlobalRest(name.Text, name.Line)
		if err != nil {
			return nil, err
		}
		globals = append(globals, g)
	}
	decls := make([]*FuncDecl, len(units))
	for i := range units {
		decls[i] = units[i].decl
	}
	g, err := newGen(globals, decls)
	if err != nil {
		return nil, err
	}
	return &Reader{g: g, toks: toks, units: units}, nil
}

// Prog returns the program skeleton: data symbols are fully populated
// by Open; functions are not appended — each ParseFunc result belongs
// to the caller.
func (r *Reader) Prog() *ir.Program { return r.g.out }

// ParseFunc parses the next function's body, lowers it to ir, and
// drops the AST. Results are validated like Generate's whole-program
// check: structure plus call targets against the unit's signatures.
func (r *Reader) ParseFunc() (*ir.Func, error) {
	if r.next >= len(r.units) {
		return nil, io.EOF
	}
	u := r.units[r.next]
	r.next++
	p := &parserState{toks: r.toks, pos: u.body}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	u.decl.Body = body
	f, err := r.g.genFunc(u.decl)
	u.decl.Body = nil
	if err != nil {
		return nil, err
	}
	if err := r.validate(f); err != nil {
		return nil, fmt.Errorf("minic: internal: generated invalid ir: %w", err)
	}
	return f, nil
}

func (r *Reader) validate(f *ir.Func) error {
	if err := f.Validate(); err != nil {
		return err
	}
	var err error
	f.Instrs(func(b *ir.Block, i *ir.Instr) {
		if err != nil || i.Op != ir.OpCall {
			return
		}
		if r.g.funcs[i.Target] == nil && !ir.IsBuiltin(i.Target) {
			err = fmt.Errorf("%s: call to undefined function %q", f.Name, i.Target)
		}
	})
	return err
}
