package minic_test

import (
	"testing"

	"gsched/internal/minic"
	"gsched/internal/sim"
)

func TestFloatEndToEnd(t *testing.T) {
	src := `
int out[4];
int main(int p0, int p1) {
	float x = 2.5;
	float y = 0.5;
	float z = x * y + 1.25;   // 2.5
	out[0] = z * 2;           // 5 -> truncated store
	float q = p0;             // int->float coercion
	q += 0.75;
	if (q > 3.0) { out[1] = 1; } else { out[1] = 2; }
	int k = 0;
	float acc = 0.0;
	while (k < 4) { acc += 0.25; k++; }
	out[2] = acc * 4.0;       // 4
	out[3] = -x;              // -2 truncated
	if (acc) { print(7); }
	return out[0] + out[1]*10 + out[2]*100 + out[3]*1000;
}
`
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m, err := sim.Load(prog)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	res, err := m.Run("main", []int64{5, 0}, nil, sim.Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// out[0]=5, out[1]=1 (5.75>3), out[2]=4, out[3]=-2
	want := int64(5 + 1*10 + 4*100 + (-2)*1000)
	if res.Ret != want {
		t.Fatalf("got %d want %d", res.Ret, want)
	}
	if len(res.Printed) != 1 || res.Printed[0] != 7 {
		t.Fatalf("print output = %v", res.Printed)
	}
}
