package gsched_test

import (
	"runtime"
	"slices"
	"testing"

	"gsched"
	"gsched/internal/core"
	"gsched/internal/machine"
	"gsched/internal/minic"
	"gsched/internal/progen"
	"gsched/internal/workload"
	"gsched/internal/xform"
)

// TestParallelSchedulingDeterministic checks the Options.Parallelism
// contract: each function's schedule depends only on that function, so a
// program scheduled by the bounded worker pool must be byte-identical —
// same instructions, same order, same merged Stats — to the same program
// scheduled sequentially. Run under -race this also exercises the worker
// pool for data races across every workload and scheduling level.
func TestParallelSchedulingDeterministic(t *testing.T) {
	mach := machine.RS6K()
	for _, w := range workload.All() {
		for _, lv := range []core.Level{core.LevelNone, core.LevelUseful, core.LevelSpeculative} {
			seqProg, err := w.Compile()
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			parProg, err := w.Compile()
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}

			seqOpts := core.Defaults(mach, lv)
			seqOpts.Parallelism = 1
			seqStats, err := xform.RunProgram(seqProg, seqOpts, xform.DefaultConfig())
			if err != nil {
				t.Fatalf("%s level=%v sequential: %v", w.Name, lv, err)
			}

			// Force more workers than the machine may have CPUs so the
			// pool path is exercised even on single-core runners.
			parOpts := core.Defaults(mach, lv)
			parOpts.Parallelism = 8
			parStats, err := xform.RunProgram(parProg, parOpts, xform.DefaultConfig())
			if err != nil {
				t.Fatalf("%s level=%v parallel: %v", w.Name, lv, err)
			}

			if seqAsm, parAsm := gsched.PrintAsm(seqProg), gsched.PrintAsm(parProg); seqAsm != parAsm {
				t.Errorf("%s level=%v: parallel schedule differs from sequential", w.Name, lv)
			}
			if seqStats != parStats {
				t.Errorf("%s level=%v: stats differ: sequential %+v, parallel %+v",
					w.Name, lv, seqStats, parStats)
			}
		}
	}
}

// jobsSweep is the Parallelism settings every determinism sweep runs:
// sequential, a small fixed pool, a pool larger than most CI machines,
// and whatever the current host reports. Explicit 4 and 8 matter on
// single-core runners, where NumCPU alone would collapse the sweep to
// the sequential path.
func jobsSweep() []int {
	jobs := []int{1, 4, 8, runtime.NumCPU()}
	slices.Sort(jobs)
	return slices.Compact(jobs)
}

// TestJobsSweepDeterministic runs every workload at every scheduling
// level under each Parallelism setting in jobsSweep and demands
// byte-identical assembly and identical merged Stats across all of
// them. With region-level parallelism this covers both grains: the
// per-function pool and the per-region-subtree pool inside each
// function. Run under -race it also shakes out sharing bugs in the
// pooled pipeline state.
func TestJobsSweepDeterministic(t *testing.T) {
	mach := machine.RS6K()
	for _, w := range workload.All() {
		for _, lv := range []core.Level{core.LevelNone, core.LevelUseful, core.LevelSpeculative} {
			var wantAsm string
			var wantStats xform.Stats
			for k, jobs := range jobsSweep() {
				prog, err := w.Compile()
				if err != nil {
					t.Fatalf("%s: %v", w.Name, err)
				}
				opts := core.Defaults(mach, lv)
				opts.Parallelism = jobs
				stats, err := xform.RunProgram(prog, opts, xform.DefaultConfig())
				if err != nil {
					t.Fatalf("%s level=%v jobs=%d: %v", w.Name, lv, jobs, err)
				}
				asm := gsched.PrintAsm(prog)
				if k == 0 {
					wantAsm, wantStats = asm, stats
					continue
				}
				if asm != wantAsm {
					t.Errorf("%s level=%v jobs=%d: schedule differs from jobs=1", w.Name, lv, jobs)
				}
				if stats != wantStats {
					t.Errorf("%s level=%v jobs=%d: stats differ: %+v, want %+v",
						w.Name, lv, jobs, stats, wantStats)
				}
			}
		}
	}
}

// TestJobsSweepDeterministicLevelDup is the jobs sweep at level=dup
// with a trained edge profile in play: profile-gated speculation,
// Definition-6 dup-motion and superblock formation must all be
// byte-deterministic across worker counts. The profile is trained once
// per workload and shared by every sweep point, exactly as a client
// would reuse an uploaded profile.
func TestJobsSweepDeterministicLevelDup(t *testing.T) {
	mach := machine.RS6K()
	for _, w := range workload.All() {
		base, err := w.Compile()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		prof := gsched.NewProfile()
		if _, err := gsched.Run(base, w.Entry, w.Args, w.Data, gsched.RunOptions{Profile: prof}); err != nil {
			t.Fatalf("%s: training run: %v", w.Name, err)
		}
		var wantAsm string
		var wantStats xform.Stats
		for k, jobs := range jobsSweep() {
			prog, err := w.Compile()
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			opts := core.Defaults(mach, core.LevelDup)
			opts.Profile = prof
			opts.Parallelism = jobs
			stats, err := xform.RunProgram(prog, opts, xform.DefaultConfig())
			if err != nil {
				t.Fatalf("%s jobs=%d: %v", w.Name, jobs, err)
			}
			asm := gsched.PrintAsm(prog)
			if k == 0 {
				wantAsm, wantStats = asm, stats
				continue
			}
			if asm != wantAsm {
				t.Errorf("%s jobs=%d: level=dup schedule differs from jobs=1", w.Name, jobs)
			}
			if stats != wantStats {
				t.Errorf("%s jobs=%d: stats differ: %+v, want %+v", w.Name, jobs, stats, wantStats)
			}
		}
	}
}

// TestProgenJobsSweepDeterministic is the same sweep over generated
// programs, whose loop nests and call graphs are bushier than the
// hand-written workloads and so exercise deeper region trees.
func TestProgenJobsSweepDeterministic(t *testing.T) {
	const seeds = 8
	mach := machine.RS6K()
	opts0 := core.Defaults(mach, core.LevelSpeculative)
	for seed := int64(0); seed < seeds; seed++ {
		src := progen.New(seed).Source
		var wantAsm string
		var wantStats xform.Stats
		for k, jobs := range jobsSweep() {
			prog, err := minic.Compile(src)
			if err != nil {
				t.Fatalf("seed %d: compile: %v", seed, err)
			}
			opts := opts0
			opts.Parallelism = jobs
			stats, err := xform.RunProgram(prog, opts, xform.DefaultConfig())
			if err != nil {
				t.Fatalf("seed %d jobs=%d: %v", seed, jobs, err)
			}
			asm := gsched.PrintAsm(prog)
			if k == 0 {
				wantAsm, wantStats = asm, stats
				continue
			}
			if asm != wantAsm {
				t.Errorf("seed %d jobs=%d: schedule differs from jobs=1", seed, jobs)
			}
			if stats != wantStats {
				t.Errorf("seed %d jobs=%d: stats differ: %+v, want %+v", seed, jobs, stats, wantStats)
			}
		}
	}
}
