package gsched_test

import (
	"testing"

	"gsched"
	"gsched/internal/core"
	"gsched/internal/machine"
	"gsched/internal/workload"
	"gsched/internal/xform"
)

// TestParallelSchedulingDeterministic checks the Options.Parallelism
// contract: each function's schedule depends only on that function, so a
// program scheduled by the bounded worker pool must be byte-identical —
// same instructions, same order, same merged Stats — to the same program
// scheduled sequentially. Run under -race this also exercises the worker
// pool for data races across every workload and scheduling level.
func TestParallelSchedulingDeterministic(t *testing.T) {
	mach := machine.RS6K()
	for _, w := range workload.All() {
		for _, lv := range []core.Level{core.LevelNone, core.LevelUseful, core.LevelSpeculative} {
			seqProg, err := w.Compile()
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			parProg, err := w.Compile()
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}

			seqOpts := core.Defaults(mach, lv)
			seqOpts.Parallelism = 1
			seqStats, err := xform.RunProgram(seqProg, seqOpts, xform.DefaultConfig())
			if err != nil {
				t.Fatalf("%s level=%v sequential: %v", w.Name, lv, err)
			}

			// Force more workers than the machine may have CPUs so the
			// pool path is exercised even on single-core runners.
			parOpts := core.Defaults(mach, lv)
			parOpts.Parallelism = 8
			parStats, err := xform.RunProgram(parProg, parOpts, xform.DefaultConfig())
			if err != nil {
				t.Fatalf("%s level=%v parallel: %v", w.Name, lv, err)
			}

			if seqAsm, parAsm := gsched.PrintAsm(seqProg), gsched.PrintAsm(parProg); seqAsm != parAsm {
				t.Errorf("%s level=%v: parallel schedule differs from sequential", w.Name, lv)
			}
			if seqStats != parStats {
				t.Errorf("%s level=%v: stats differ: sequential %+v, parallel %+v",
					w.Name, lv, seqStats, parStats)
			}
		}
	}
}
