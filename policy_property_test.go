package gsched_test

import (
	"testing"

	"gsched"
	"gsched/internal/core"
	"gsched/internal/machine"
	"gsched/internal/minic"
	"gsched/internal/policy"
	"gsched/internal/progen"
	"gsched/internal/xform"
)

// TestDefaultPolicyMatchesBuiltin pins the policy language to the
// paper: the DefaultSource expression must reproduce the built-in §5.2
// decision order byte-for-byte — same assembly, same stats — across the
// progen corpus, two machines, and the useful/speculative/dup levels
// (dup with a trained profile, so the probability-window tier is
// actually exercised). Any drift between the expression engine and
// compareCandidates shows up as a schedule diff here.
func TestDefaultPolicyMatchesBuiltin(t *testing.T) {
	const seeds = 12
	machines := []*machine.Desc{machine.RS6K(), machine.Superscalar(4, 2)}
	levels := []core.Level{core.LevelUseful, core.LevelSpeculative, core.LevelDup}
	pol := policy.Default()
	for seed := int64(0); seed < seeds; seed++ {
		p := progen.New(seed)
		// Train a profile once per program so level=dup runs its
		// probability-gated paths under both comparators.
		base, err := minic.Compile(p.Source)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		prof := gsched.NewProfile()
		if _, err := gsched.Run(base, p.Entry, p.Args, nil, gsched.RunOptions{MaxInstrs: 20_000_000, Profile: prof}); err != nil {
			t.Fatalf("seed %d: training run: %v", seed, err)
		}
		for _, mach := range machines {
			for _, lv := range levels {
				schedule := func(withPolicy bool) (string, xform.Stats) {
					prog, err := minic.Compile(p.Source)
					if err != nil {
						t.Fatalf("seed %d: compile: %v", seed, err)
					}
					opts := core.Defaults(mach, lv)
					opts.Verify = true
					if lv == core.LevelDup {
						opts.Profile = prof
					}
					if withPolicy {
						opts.Policy = pol
					}
					st, err := xform.RunProgram(prog, opts, xform.DefaultConfig())
					if err != nil {
						t.Fatalf("seed %d %s level=%v policy=%t: %v", seed, mach.Name, lv, withPolicy, err)
					}
					return gsched.PrintAsm(prog), st
				}
				builtinAsm, builtinStats := schedule(false)
				policyAsm, policyStats := schedule(true)
				if policyAsm != builtinAsm {
					t.Errorf("seed %d %s level=%v: default-policy schedule differs from built-in heuristic",
						seed, mach.Name, lv)
				}
				if policyStats != builtinStats {
					t.Errorf("seed %d %s level=%v: stats differ: policy %+v, builtin %+v",
						seed, mach.Name, lv, policyStats, builtinStats)
				}
			}
		}
	}
}

// TestPolicySchedulesVerify sweeps seeded-random policies — weighted
// priorities, sometimes a speculation gate — over generated programs
// with the independent legality verifier armed and the simulator as the
// behaviour oracle: any valid policy may reorder the ready list or veto
// candidates, but it must never produce an illegal or wrong schedule.
func TestPolicySchedulesVerify(t *testing.T) {
	const programs = 6
	const policies = 6
	mach := machine.RS6K()
	for seed := int64(0); seed < programs; seed++ {
		p := progen.New(seed)
		base, err := minic.Compile(p.Source)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		want, err := gsched.Run(base, p.Entry, p.Args, nil, gsched.RunOptions{MaxInstrs: 20_000_000})
		if err != nil {
			t.Fatalf("seed %d: baseline run: %v", seed, err)
		}
		for ps := int64(1); ps <= policies; ps++ {
			prog, err := minic.Compile(p.Source)
			if err != nil {
				t.Fatalf("seed %d: compile: %v", seed, err)
			}
			opts := core.Defaults(mach, core.LevelSpeculative)
			opts.Policy = policy.Random(ps)
			opts.Verify = true
			if _, err := xform.RunProgram(prog, opts, xform.DefaultConfig()); err != nil {
				t.Fatalf("seed %d policy %d (%q): %v", seed, ps, opts.Policy.Canonical(), err)
			}
			got, err := gsched.Run(prog, p.Entry, p.Args, nil, gsched.RunOptions{
				Machine: mach, ForgivingLoads: true, MaxInstrs: 20_000_000,
			})
			if err != nil {
				t.Fatalf("seed %d policy %d: scheduled run: %v", seed, ps, err)
			}
			if got.Ret != want.Ret || got.PrintedString() != want.PrintedString() {
				t.Errorf("seed %d policy %d (%q): ret=%d/%q want %d/%q",
					seed, ps, opts.Policy.Canonical(), got.Ret, got.PrintedString(), want.Ret, want.PrintedString())
			}
		}
	}
}

// TestJobsSweepDeterministicPolicy is the byte-determinism sweep with a
// policy installed: the policy comparator and gate read only per-
// candidate state, so schedules must stay identical at any Parallelism,
// exactly like the built-in heuristic's.
func TestJobsSweepDeterministicPolicy(t *testing.T) {
	const seeds = 4
	mach := machine.RS6K()
	// Seed 3's generated policy carries both a reweighted priority and a
	// gate in the current generator; assert nothing about that here —
	// any seeded policy must be deterministic.
	pols := []*policy.Policy{policy.Random(3), policy.Random(7)}
	for seed := int64(0); seed < seeds; seed++ {
		src := progen.New(seed).Source
		for pi, pol := range pols {
			var wantAsm string
			var wantStats xform.Stats
			for k, jobs := range jobsSweep() {
				prog, err := minic.Compile(src)
				if err != nil {
					t.Fatalf("seed %d: compile: %v", seed, err)
				}
				opts := core.Defaults(mach, core.LevelSpeculative)
				opts.Policy = pol
				opts.Parallelism = jobs
				stats, err := xform.RunProgram(prog, opts, xform.DefaultConfig())
				if err != nil {
					t.Fatalf("seed %d policy %d jobs=%d: %v", seed, pi, jobs, err)
				}
				asm := gsched.PrintAsm(prog)
				if k == 0 {
					wantAsm, wantStats = asm, stats
					continue
				}
				if asm != wantAsm {
					t.Errorf("seed %d policy %d jobs=%d: schedule differs from jobs=1", seed, pi, jobs)
				}
				if stats != wantStats {
					t.Errorf("seed %d policy %d jobs=%d: stats differ: %+v, want %+v",
						seed, pi, jobs, stats, wantStats)
				}
			}
		}
	}
}
