// Command bench runs the repo's headline performance benchmarks and
// writes a machine-readable JSON report (BENCH_schedule.json by
// default), so CI can archive per-commit numbers and regressions show
// up as diffs in an artifact instead of anecdotes.
//
//	go run ./cmd/bench -o BENCH_schedule.json -benchtime 1s
//
// The benchmarks mirror the `go test -bench` definitions — same
// workloads, same server configurations — but run through
// testing.Benchmark so the output is a stable JSON document rather
// than text to parse.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"gsched/internal/core"
	"gsched/internal/machine"
	"gsched/internal/progen"
	"gsched/internal/serve"
	"gsched/internal/workload"
	"gsched/internal/xform"
)

// Result is one benchmark's measurements. ReqPerS is present only for
// the serving benchmarks (it is requests, not iterations, per second —
// identical here because each iteration is one request).
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	ReqPerS     float64 `json:"req_per_s,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	NumCPU      int      `json:"num_cpu"`
	Benchmarks  []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH_schedule.json", "output file (- for stdout)")
	benchtime := flag.String("benchtime", "1s", "per-benchmark measuring time")
	testing.Init()
	flag.Parse()
	if err := flag.Lookup("test.benchtime").Value.Set(*benchtime); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	report := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
	}
	for _, b := range []struct {
		name  string
		reqps bool
		fn    func(*testing.B)
	}{
		{"scheduler_throughput", false, benchSchedulerThroughput},
		{"schedule_only_li", false, benchScheduleOnlyLI},
		{"serve_hit", true, benchServeHit},
		{"serve_miss", true, benchServeMiss},
	} {
		fmt.Fprintf(os.Stderr, "running %s...\n", b.name)
		res := testing.Benchmark(b.fn)
		r := Result{
			Name:        b.name,
			Iterations:  res.N,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		if b.reqps && res.T > 0 {
			r.ReqPerS = float64(res.N) / res.T.Seconds()
		}
		report.Benchmarks = append(report.Benchmarks, r)
		fmt.Fprintf(os.Stderr, "  %d iters, %d ns/op, %d allocs/op\n",
			res.N, res.NsPerOp(), res.AllocsPerOp())
	}

	enc, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// benchSchedulerThroughput is BenchmarkSchedulerThroughput: compile +
// full pipeline per iteration on the li workload.
func benchSchedulerThroughput(b *testing.B) {
	w := workload.LI()
	mach := machine.RS6K()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog, err := w.Compile()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := xform.RunProgram(prog, core.Defaults(mach, core.LevelSpeculative), xform.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchScheduleOnlyLI times only the scheduling pipeline; compilation
// runs outside the timer.
func benchScheduleOnlyLI(b *testing.B) {
	w := workload.LI()
	mach := machine.RS6K()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		prog, err := w.Compile()
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := xform.RunProgram(prog, core.Defaults(mach, core.LevelSpeculative), xform.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func quietServer(cfg serve.Config) (*serve.Server, *httptest.Server) {
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	s := serve.New(cfg)
	return s, httptest.NewServer(s.Handler())
}

func postOnce(url string, body []byte) error {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// benchServeHit is BenchmarkServeThroughput: a warm cache served over
// HTTP, concurrent clients.
func benchServeHit(b *testing.B) {
	_, ts := quietServer(serve.Config{Workers: 4, QueueDepth: 1 << 20})
	defer ts.Close()

	corpus := make([][]byte, 8)
	for i := range corpus {
		body, err := json.Marshal(&serve.Request{Source: progen.New(int64(i)).Source})
		if err != nil {
			b.Fatal(err)
		}
		corpus[i] = body
		if err := postOnce(ts.URL+"/schedule", body); err != nil {
			b.Fatal(err)
		}
	}

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if err := postOnce(ts.URL+"/schedule", corpus[i%len(corpus)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// benchServeMiss is BenchmarkServeMiss: caching disabled, every request
// runs the pipeline.
func benchServeMiss(b *testing.B) {
	_, ts := quietServer(serve.Config{Workers: 4, QueueDepth: 1 << 20, CacheBytes: -1})
	defer ts.Close()

	body, err := json.Marshal(&serve.Request{Source: progen.New(3).Source})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := postOnce(ts.URL+"/schedule", body); err != nil {
			b.Fatal(err)
		}
	}
}
