// Command bench runs the repo's headline performance benchmarks and
// writes a machine-readable JSON report (BENCH_schedule.json by
// default), so CI can archive per-commit numbers and regressions show
// up as diffs in an artifact instead of anecdotes.
//
//	go run ./cmd/bench -o BENCH_schedule.json -benchtime 1s
//
// The benchmarks mirror the `go test -bench` definitions — same
// workloads, same server configurations — but run through
// testing.Benchmark so the output is a stable JSON document rather
// than text to parse.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gsched/internal/asm"
	"gsched/internal/core"
	"gsched/internal/eval"
	"gsched/internal/machine"
	"gsched/internal/progen"
	"gsched/internal/serve"
	"gsched/internal/stream"
	"gsched/internal/tune"
	"gsched/internal/workload"
	"gsched/internal/xform"
)

// Result is one benchmark's measurements. ReqPerS is present only for
// the serving benchmarks (it is requests, not iterations, per second —
// identical here because each iteration is one request). Nodes and the
// hit-ratio fields describe the cluster benchmarks: TargetHitRatio is
// the request mix the client aimed for, HitRatio the ratio the store
// counters actually measured (memory + disk + peer hits over lookups).
type Result struct {
	Name           string  `json:"name"`
	Iterations     int     `json:"iterations"`
	NsPerOp        int64   `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	ReqPerS        float64 `json:"req_per_s,omitempty"`
	Nodes          int     `json:"nodes,omitempty"`
	TargetHitRatio float64 `json:"target_hit_ratio,omitempty"`
	HitRatio       float64 `json:"hit_ratio,omitempty"`
	ReqPerSPerCore float64 `json:"req_per_s_per_core,omitempty"`
}

// ScalePoint is one size of the big-program scaling sweep: the full
// streaming pipeline (parse → schedule → print) run once over a
// progen.Huge program of roughly TargetInstrs instructions. The
// per-instruction ratios are the headline numbers — sub-linear growth
// in ns/instr and allocs/instr across the sweep means the tool chain
// scales to big programs; a jump flags a superlinear hot spot.
type ScalePoint struct {
	TargetInstrs   int     `json:"target_instrs"`
	Funcs          int     `json:"funcs"`
	Instrs         int     `json:"instrs"`
	SourceBytes    int     `json:"source_bytes"`
	Jobs           int     `json:"jobs"`
	WallNs         int64   `json:"wall_ns"`
	NsPerInstr     float64 `json:"ns_per_instr"`
	AllocsPerInstr float64 `json:"allocs_per_instr"`
	BytesPerInstr  float64 `json:"bytes_per_instr"`
	PeakHeapBytes  uint64  `json:"peak_heap_bytes"`
}

// Report is the top-level JSON document. NumCPU is the machine's CPU
// count; GoMaxProcs is what the benchmarks could actually use — on a
// quota-limited container the two differ, and req/s-per-core math must
// divide by GoMaxProcs, not NumCPU.
type Report struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	NumCPU      int      `json:"num_cpu"`
	GoMaxProcs  int      `json:"go_max_procs"`
	Parallel    int      `json:"client_parallelism"`
	Benchmarks  []Result `json:"benchmarks"`

	// SpeedupVsDepth is the speculation-depth curve (degree ×
	// probability gate, RTI over BASE in simulated cycles) on the four
	// workload proxies. Cycle counts are deterministic, so diffs here
	// are real scheduling changes, not timing noise.
	SpeedupVsDepth []eval.DepthPoint `json:"speedup_vs_depth,omitempty"`

	// Tuned holds one auto-tuner run per workload proxy (fixed seed,
	// mode=both): the best (policy, machine) pair found versus the
	// built-in §5.2 order on the stock RS6K. Deterministic in the seed,
	// so these diff like the curve: a change is a real search-space or
	// scheduler change.
	Tuned []*tune.Result `json:"tuned,omitempty"`

	// Scaling is the big-program scaling curve: one streaming-pipeline
	// run per program size (1×/10×/100× and beyond). Unlike the
	// benchmarks above these are single runs of multi-second workloads,
	// so ns figures carry a few percent of noise; the shape of the
	// curve, not the last digit, is the signal.
	Scaling []ScalePoint `json:"scaling,omitempty"`
}

func main() {
	out := flag.String("o", "BENCH_schedule.json", "output file (- for stdout)")
	benchtime := flag.String("benchtime", "1s", "per-benchmark measuring time")
	parallel := flag.Int("parallel", 4, "client goroutines per GOMAXPROCS in the serving benchmarks")
	clusterBench := flag.Bool("cluster", true, "include the 3-node cluster capacity benchmarks")
	curve := flag.Bool("curve", true, "include the speedup-vs-speculation-depth curve")
	tuneRuns := flag.Bool("tune", true, "include per-workload auto-tuner runs (policy + machine search)")
	tuneIters := flag.Int("tune-iters", 32, "candidate evaluations per auto-tuner run")
	scaleSweep := flag.Bool("scale", true, "include the big-program scaling sweep")
	scaleSizes := flag.String("scale-sizes", "1000,10000,100000", "comma-separated target instruction counts for -scale")
	scaleJobs := flag.Int("scale-jobs", 0, "worker count for the scaling sweep (0 = GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	testing.Init()
	flag.Parse()
	if err := flag.Lookup("test.benchtime").Value.Set(*benchtime); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
			}
		}()
	}

	report := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Parallel:    *parallel,
	}
	type bench struct {
		name  string
		reqps bool
		extra *Result // cluster/restart measurements filled by the bench
		fn    func(*testing.B)
	}
	benches := []bench{
		{name: "scheduler_throughput", fn: benchSchedulerThroughput},
		{name: "schedule_only_li", fn: benchScheduleOnlyLI},
		{name: "serve_hit", reqps: true, fn: benchServeHit(*parallel)},
		{name: "serve_miss", reqps: true, fn: benchServeMiss(*parallel)},
	}
	{
		extra := &Result{}
		benches = append(benches, bench{name: "serve_disk_warm_restart", reqps: true, extra: extra,
			fn: benchDiskWarmRestart(*parallel, extra)})
	}
	if *clusterBench {
		for _, hr := range []float64{0, 0.5, 0.9, 0.99} {
			extra := &Result{}
			benches = append(benches, bench{
				name:  fmt.Sprintf("cluster3_hit%02d", int(hr*100)),
				reqps: true,
				extra: extra,
				fn:    benchCluster3(hr, *parallel, extra),
			})
		}
	}
	for _, b := range benches {
		fmt.Fprintf(os.Stderr, "running %s...\n", b.name)
		res := testing.Benchmark(b.fn)
		r := Result{
			Name:        b.name,
			Iterations:  res.N,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		if b.reqps && res.T > 0 {
			r.ReqPerS = float64(res.N) / res.T.Seconds()
			r.ReqPerSPerCore = r.ReqPerS / float64(report.GoMaxProcs)
		}
		if b.extra != nil {
			r.Nodes = b.extra.Nodes
			r.TargetHitRatio = b.extra.TargetHitRatio
			r.HitRatio = b.extra.HitRatio
		}
		report.Benchmarks = append(report.Benchmarks, r)
		fmt.Fprintf(os.Stderr, "  %d iters, %d ns/op, %d allocs/op\n",
			res.N, res.NsPerOp(), res.AllocsPerOp())
	}

	if *curve {
		fmt.Fprintln(os.Stderr, "running speedup_vs_depth...")
		_, points, err := eval.SpeedupVsDepth(workload.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		report.SpeedupVsDepth = points
	}

	if *tuneRuns {
		for _, w := range workload.All() {
			fmt.Fprintf(os.Stderr, "tuning %s...\n", w.Name)
			res, err := tune.Run(context.Background(), tune.Config{
				Seed: 1, Iters: *tuneIters, Mode: tune.ModeBoth,
				Workloads: []*workload.Workload{w},
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "  baseline %d cycles, best %d (%.1f%%)\n",
				res.BaselineCycles, res.BestCycles, res.ImprovedPct)
			report.Tuned = append(report.Tuned, res)
		}
	}

	if *scaleSweep {
		sizes, err := parseSizes(*scaleSizes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		jobs := *scaleJobs
		if jobs <= 0 {
			jobs = runtime.GOMAXPROCS(0)
		}
		// Warm up code paths and the heap once so the first measured
		// point does not pay JIT-less Go's one-time costs (first GC
		// growth, lazily built tables).
		if _, err := runScalePoint(1000, jobs); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		for _, target := range sizes {
			fmt.Fprintf(os.Stderr, "scaling %d instrs...\n", target)
			pt, err := runScalePoint(target, jobs)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			report.Scaling = append(report.Scaling, pt)
			fmt.Fprintf(os.Stderr, "  %d funcs, %d instrs: %.0f ns/instr, %.2f allocs/instr, peak heap %.1f MiB\n",
				pt.Funcs, pt.Instrs, pt.NsPerInstr, pt.AllocsPerInstr, float64(pt.PeakHeapBytes)/(1<<20))
		}
	}

	enc, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -scale-sizes entry %q", tok)
		}
		sizes = append(sizes, v)
	}
	return sizes, nil
}

// runScalePoint generates a progen.Huge program of about target
// instructions and runs it once through the streaming pipeline (parse,
// rename, schedule at the speculative level with the §6 transforms,
// print to a discarded writer), measuring wall time, allocations, and
// peak heap. Generation happens outside the measured window; a
// background sampler polls HeapAlloc so the peak covers mid-run state,
// not just the final heap.
func runScalePoint(target, jobs int) (ScalePoint, error) {
	hp := progen.Huge(11, target)
	cfg := stream.Config{
		Opts:     core.Defaults(machine.RS6K(), core.LevelSpeculative),
		Pipeline: xform.DefaultConfig(), UsePipeline: true,
		Jobs: jobs,
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	var peak atomic.Uint64
	stop := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak.Load() {
					peak.Store(ms.HeapAlloc)
				}
			}
		}
	}()

	t0 := time.Now()
	res, err := stream.Schedule(context.Background(), asm.Native, hp.Source, cfg, io.Discard)
	wall := time.Since(t0)
	close(stop)
	<-sampled
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if err != nil {
		return ScalePoint{}, fmt.Errorf("scale %d: %w", target, err)
	}
	if after.HeapAlloc > peak.Load() {
		peak.Store(after.HeapAlloc)
	}

	n := float64(res.Instrs)
	return ScalePoint{
		TargetInstrs:   target,
		Funcs:          res.Funcs,
		Instrs:         res.Instrs,
		SourceBytes:    len(hp.Source),
		Jobs:           jobs,
		WallNs:         wall.Nanoseconds(),
		NsPerInstr:     float64(wall.Nanoseconds()) / n,
		AllocsPerInstr: float64(after.Mallocs-before.Mallocs) / n,
		BytesPerInstr:  float64(after.TotalAlloc-before.TotalAlloc) / n,
		PeakHeapBytes:  peak.Load(),
	}, nil
}

// benchSchedulerThroughput is BenchmarkSchedulerThroughput: compile +
// full pipeline per iteration on the li workload.
func benchSchedulerThroughput(b *testing.B) {
	w := workload.LI()
	mach := machine.RS6K()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog, err := w.Compile()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := xform.RunProgram(prog, core.Defaults(mach, core.LevelSpeculative), xform.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchScheduleOnlyLI times only the scheduling pipeline; compilation
// runs outside the timer.
func benchScheduleOnlyLI(b *testing.B) {
	w := workload.LI()
	mach := machine.RS6K()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		prog, err := w.Compile()
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := xform.RunProgram(prog, core.Defaults(mach, core.LevelSpeculative), xform.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func quietServer(cfg serve.Config) (*serve.Server, *httptest.Server) {
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	s, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	return s, httptest.NewServer(s.Handler())
}

func postOnce(url string, body []byte) error {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// scheduleBody marshals a /schedule request for the progen program at
// seed.
func scheduleBody(seed int64) []byte {
	body, err := json.Marshal(&serve.Request{Source: progen.New(seed).Source})
	if err != nil {
		panic(err)
	}
	return body
}

// benchServeHit is BenchmarkServeThroughput: a warm cache served over
// HTTP, parallel clients.
func benchServeHit(parallel int) func(*testing.B) {
	return func(b *testing.B) {
		s, ts := quietServer(serve.Config{Workers: 4, QueueDepth: 1 << 20})
		defer ts.Close()
		defer s.Close()

		corpus := make([][]byte, 8)
		for i := range corpus {
			corpus[i] = scheduleBody(int64(i))
			if err := postOnce(ts.URL+"/schedule", corpus[i]); err != nil {
				b.Fatal(err)
			}
		}

		b.SetParallelism(parallel)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if err := postOnce(ts.URL+"/schedule", corpus[i%len(corpus)]); err != nil {
					b.Error(err)
					return
				}
				i++
			}
		})
	}
}

// benchServeMiss is BenchmarkServeMiss with parallel clients: caching
// disabled and every request a distinct program, so every request runs
// the pipeline (identical concurrent requests would otherwise collapse
// onto one run via single-flight and overstate throughput).
func benchServeMiss(parallel int) func(*testing.B) {
	return func(b *testing.B) {
		s, ts := quietServer(serve.Config{Workers: 4, QueueDepth: 1 << 20, CacheBytes: -1})
		defer ts.Close()
		defer s.Close()

		var seq atomic.Int64
		b.SetParallelism(parallel)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				body := scheduleBody(1_000_000 + seq.Add(1))
				if err := postOnce(ts.URL+"/schedule", body); err != nil {
					b.Error(err)
					return
				}
			}
		})
	}
}

// benchDiskWarmRestart measures the warm-start path: a server computes
// a corpus into its disk tier, dies, and its successor serves the same
// corpus from disk files with zero pipeline runs. The recorded
// HitRatio is the successor's measured store hit ratio (1.0 when every
// request warm-started).
func benchDiskWarmRestart(parallel int, rec *Result) func(*testing.B) {
	return func(b *testing.B) {
		dir := b.TempDir()
		const corpusN = 16
		corpus := make([][]byte, corpusN)
		s1, ts1 := quietServer(serve.Config{Workers: 4, CacheDir: dir})
		for i := range corpus {
			corpus[i] = scheduleBody(int64(2_000_000 + i))
			if err := postOnce(ts1.URL+"/schedule", corpus[i]); err != nil {
				b.Fatal(err)
			}
		}
		ts1.Close()
		s1.Close()

		// The successor: same directory, cold memory. Shrink the memory
		// tier below the corpus so requests keep reaching the disk tier
		// instead of being absorbed by RAM after the first touch.
		s2, ts2 := quietServer(serve.Config{Workers: 4, QueueDepth: 1 << 20,
			CacheDir: dir, CacheBytes: 1})
		defer ts2.Close()
		defer s2.Close()

		var seq atomic.Int64
		b.SetParallelism(parallel)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				body := corpus[seq.Add(1)%corpusN]
				if err := postOnce(ts2.URL+"/schedule", body); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.StopTimer()

		var hits, lookups float64
		for _, st := range s2.StoreStats() {
			hits += float64(st.Hits)
			if st.Tier == "memory" {
				lookups = float64(st.Hits + st.Misses)
			}
		}
		rec.Nodes = 1
		rec.TargetHitRatio = 1
		if lookups > 0 {
			rec.HitRatio = hits / lookups
		}
	}
}

// clusterTierTotals sums (memory+disk+peer hits, lookups) across all
// nodes; lookups is the memory tier's hits+misses, the top of every
// store walk.
func clusterTierTotals(c *serve.Cluster, n int) (hits, lookups float64) {
	for i := 0; i < n; i++ {
		s := c.Server(i)
		if s == nil {
			continue
		}
		for _, st := range s.StoreStats() {
			hits += float64(st.Hits)
			if st.Tier == "memory" {
				lookups += float64(st.Hits + st.Misses)
			}
		}
	}
	return hits, lookups
}

// benchCluster3 measures a 3-node in-process cluster at a target hit
// ratio: a warmed corpus supplies the hits (memory, disk or peer —
// whatever tier answers first), fresh programs supply the misses, and
// requests round-robin across nodes. The recorded HitRatio is what the
// store counters measured over the timed window.
func benchCluster3(hitRatio float64, parallel int, rec *Result) func(*testing.B) {
	return func(b *testing.B) {
		const nodes = 3
		cfg := serve.Config{Workers: 2, QueueDepth: 1 << 20,
			Logger: slog.New(slog.NewTextHandler(io.Discard, nil))}
		c, err := serve.StartCluster(nodes, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		urls := c.URLs()

		const corpusN = 16
		corpus := make([][]byte, corpusN)
		for i := range corpus {
			corpus[i] = scheduleBody(int64(3_000_000 + i))
			// Touch every node so replication and promotion settle
			// before the timer starts.
			for k := 0; k < nodes; k++ {
				if err := postOnce(urls[k]+"/schedule", corpus[i]); err != nil {
					b.Fatal(err)
				}
			}
		}

		hitsBefore, lookupsBefore := clusterTierTotals(c, nodes)
		hitCut := int64(hitRatio * 100)
		var seq atomic.Int64
		b.SetParallelism(parallel)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := seq.Add(1)
				var body []byte
				if i%100 < hitCut {
					body = corpus[i%corpusN]
				} else {
					body = scheduleBody(4_000_000 + i)
				}
				if err := postOnce(urls[i%nodes]+"/schedule", body); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.StopTimer()

		hitsAfter, lookupsAfter := clusterTierTotals(c, nodes)
		rec.Nodes = nodes
		rec.TargetHitRatio = hitRatio
		if d := lookupsAfter - lookupsBefore; d > 0 {
			rec.HitRatio = (hitsAfter - hitsBefore) / d
		}
	}
}
