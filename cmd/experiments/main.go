// Command experiments regenerates every table and figure of the paper's
// evaluation (and this reproduction's extensions):
//
//	experiments -fig all        # everything
//	experiments -fig 256        # Figures 2/5/6 cycle counts
//	experiments -fig 3          # Figure 3: minmax control flow graph
//	experiments -fig 4          # Figure 4: minmax CSPDG
//	experiments -fig 5          # the useful-only scheduled listing
//	experiments -fig 6          # the speculative scheduled listing
//	experiments -fig 7          # compile-time overheads
//	experiments -fig 8          # run-time improvements
//	experiments -fig 8r         # Figure 8 under taken-only branch delays
//	experiments -fig wider      # wider-machine projection (§6 remark)
//	experiments -fig ablation   # design-choice ablations
//	experiments -fig depth      # speedup vs speculation depth × probability gate
//	experiments -fig dup        # Definition-6 duplication vs the published levels
package main

import (
	"flag"
	"fmt"
	"os"

	"gsched/internal/core"
	"gsched/internal/eval"
	"gsched/internal/workload"
)

var (
	fig  = flag.String("fig", "all", "which figure to regenerate (256, 3, 4, 5, 6, 7, 8, 8r, wider, ablation, all)")
	reps = flag.Int("reps", 3, "timing repetitions for Figure 7")
)

func main() {
	flag.Parse()
	if err := run(*fig); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(which string) error {
	ws := workload.All()
	all := which == "all"
	header := func(s string) { fmt.Printf("\n==== %s ====\n\n", s) }

	if all || which == "256" || which == "2" {
		header("Figures 2/5/6: minmax cycles per iteration")
		t, err := eval.Figures256()
		if err != nil {
			return err
		}
		fmt.Print(t)
	}
	if all || which == "3" {
		header("Figure 3: control flow graph of the minmax loop (function block numbering)")
		fmt.Print(eval.Figure3())
	}
	if all || which == "4" {
		header("Figure 4: forward control dependences of the minmax loop")
		s, err := eval.Figure4()
		if err != nil {
			return err
		}
		fmt.Print(s)
	}
	if all || which == "5" {
		header("Figure 5: minmax loop after useful-only global scheduling")
		s, err := eval.ScheduledListing(core.LevelUseful)
		if err != nil {
			return err
		}
		fmt.Print(s)
	}
	if all || which == "6" {
		header("Figure 6: minmax loop after useful + speculative scheduling")
		s, err := eval.ScheduledListing(core.LevelSpeculative)
		if err != nil {
			return err
		}
		fmt.Print(s)
	}
	if all || which == "7" {
		header("Figure 7: compile-time overhead")
		t, err := eval.Figure7(ws, *reps)
		if err != nil {
			return err
		}
		fmt.Print(t)
	}
	if all || which == "8" {
		header("Figure 8: run-time improvement")
		t, err := eval.Figure8(ws)
		if err != nil {
			return err
		}
		fmt.Print(t)
	}
	if all || which == "8r" {
		header("Figure 8 under the taken-only branch delay model")
		t, err := eval.Figure8Realistic(ws)
		if err != nil {
			return err
		}
		fmt.Print(t)
	}
	if all || which == "wider" {
		header("Wider machines (§6 closing remark)")
		t, err := eval.WiderMachines(ws)
		if err != nil {
			return err
		}
		fmt.Print(t)
	}
	if all || which == "ablation" {
		header("Ablations")
		t, err := eval.Ablation(ws)
		if err != nil {
			return err
		}
		fmt.Print(t)
	}
	if all || which == "order" {
		header("Phase order: scheduling before vs after register allocation")
		t, err := eval.ScheduleOrder(ws)
		if err != nil {
			return err
		}
		fmt.Print(t)
	}
	if all || which == "profile" {
		header("Profile-guided speculation (§1 branch probabilities)")
		t, err := eval.ProfileGuided(ws)
		if err != nil {
			return err
		}
		fmt.Print(t)
	}
	if all || which == "degree" {
		header("n-branch speculation degrees (Definition 7 / future work)")
		t, err := eval.SpecDegrees(ws)
		if err != nil {
			return err
		}
		fmt.Print(t)
	}
	if all || which == "depth" {
		header("Speedup vs speculation depth (degree × probability gate)")
		t, _, err := eval.SpeedupVsDepth(ws)
		if err != nil {
			return err
		}
		fmt.Print(t)
	}
	if all || which == "dup" {
		header("Definition-6 duplication (level=dup vs the published levels)")
		t, err := eval.DupMotion(ws)
		if err != nil {
			return err
		}
		fmt.Print(t)
	}
	if all || which == "character" {
		header("Code character: Unix-type vs scientific (§1)")
		t, err := eval.CodeCharacter()
		if err != nil {
			return err
		}
		fmt.Print(t)
	}
	if all || which == "caps" {
		header("Region size caps (§6)")
		t, err := eval.RegionCaps(ws)
		if err != nil {
			return err
		}
		fmt.Print(t)
	}
	if all || which == "counter" {
		header("Counter register (footnote 3)")
		t, err := eval.CounterRegister()
		if err != nil {
			return err
		}
		fmt.Print(t)
	}
	return nil
}
