package main

import "testing"

// TestFastFigures exercises the cheap figure paths end to end (the
// heavier ones are covered by internal/eval's tests and the benchmarks).
func TestFastFigures(t *testing.T) {
	for _, fig := range []string{"256", "3", "4", "5", "6", "counter"} {
		if err := run(fig); err != nil {
			t.Errorf("run(%q): %v", fig, err)
		}
	}
}

func TestUnknownFigureIsSilent(t *testing.T) {
	// An unknown figure selects nothing; that's fine (prints nothing).
	if err := run("zzz"); err != nil {
		t.Errorf("run(zzz): %v", err)
	}
}
