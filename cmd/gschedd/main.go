// Command gschedd is the long-running scheduling daemon: an HTTP/JSON
// service over the compile/schedule pipeline with a bounded worker
// pool, a content-addressed response cache, admission control and a
// /metrics observability endpoint.
//
// Usage:
//
//	gschedd [flags]
//
// Endpoints:
//
//	POST /schedule      schedule a mini-C or assembly program
//	POST /tune          start an async policy/machine auto-tuning run
//	GET  /jobs/{id}     poll an async exact or tuning job
//	GET  /metrics       Prometheus text metrics
//	GET  /healthz       liveness probe
//	GET  /debug/pprof/  Go profiling
//
// Example:
//
//	gschedd -addr :8421 &
//	curl -s localhost:8421/schedule -d '{
//	  "source": "int main(int n) { int s = 0; while (n > 0) { s = s + n; n = n - 1; } return s; }",
//	  "level": "speculative",
//	  "simulate": {"entry": "main", "args": [10]}
//	}'
//
// SIGINT/SIGTERM drain gracefully: in-flight schedules finish (up to
// -drain), new connections are refused.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"gsched/internal/serve"
)

var (
	addr       = flag.String("addr", ":8421", "listen address")
	workers    = flag.Int("workers", runtime.NumCPU(), "concurrent scheduling jobs")
	queue      = flag.Int("queue", 0, "admitted jobs waiting beyond the workers before 503 (default 2×workers)")
	cacheMB    = flag.Int64("cache-mb", 64, "in-memory response cache size in MiB (negative disables the whole store stack)")
	cacheDir   = flag.String("cache-dir", "", "persistent cache directory (empty: memory only)")
	diskMB     = flag.Int64("disk-mb", 256, "on-disk cache size in MiB (needs -cache-dir)")
	timeout    = flag.Duration("timeout", 30*time.Second, "per-request scheduling budget")
	maxBody    = flag.Int64("max-body", 4<<20, "request body limit in bytes (413 above)")
	drain      = flag.Duration("drain", 30*time.Second, "graceful shutdown budget for in-flight requests")
	debugPanic = flag.Bool("debug-panic", false, "honour debug_panic requests (crash drills; never in production)")
	logJSON    = flag.Bool("log-json", true, "structured JSON request logs on stderr (false: text)")

	exactWorkers = flag.Int("exact-workers", 1, "concurrent exact-tier (level=optimal) jobs")
	exactQueue   = flag.Int("exact-queue", 16, "queued exact jobs before 503")
	exactTimeout = flag.Duration("exact-timeout", 60*time.Second, "per-job deadline for exact runs")

	tuneWorkers = flag.Int("tune-workers", 1, "concurrent auto-tuning jobs")
	tuneQueue   = flag.Int("tune-queue", 8, "queued tuning jobs before 503")
	tuneTimeout = flag.Duration("tune-timeout", 120*time.Second, "per-job deadline for tuning runs")

	self           = flag.String("self", "", "this node's advertised base URL, e.g. http://10.0.0.1:8421 (required with -peers)")
	peers          = flag.String("peers", "", "comma-separated base URLs of the other cluster nodes (enables the peer tier)")
	peerTimeout    = flag.Duration("peer-timeout", 500*time.Millisecond, "budget for one peer conversation before computing locally")
	replicateAfter = flag.Int("replicate-after", 2, "peer fetches of a key before it is replicated locally (negative: first fetch)")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gschedd:", err)
		os.Exit(1)
	}
}

func run() error {
	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	cacheBytes := *cacheMB << 20
	if *cacheMB < 0 {
		cacheBytes = -1
	}
	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	srv, err := serve.New(serve.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		MaxBodyBytes:    *maxBody,
		Timeout:         *timeout,
		CacheBytes:      cacheBytes,
		CacheDir:        *cacheDir,
		DiskCacheBytes:  *diskMB << 20,
		Self:            *self,
		Peers:           peerList,
		PeerTimeout:     *peerTimeout,
		ReplicateAfter:  *replicateAfter,
		ExactWorkers:    *exactWorkers,
		ExactQueueDepth: *exactQueue,
		ExactTimeout:    *exactTimeout,
		TuneWorkers:     *tuneWorkers,
		TuneQueueDepth:  *tuneQueue,
		TuneTimeout:     *tuneTimeout,
		AllowDebugPanic: *debugPanic,
		Logger:          logger,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "workers", *workers,
			"cache_mb", *cacheMB, "timeout", timeout.String())
		errCh <- hs.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	logger.Info("draining", "budget", drain.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("drained")
	return nil
}
