package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"gsched/internal/serve"
)

// TestGscheddClusterSmoke is the process-level cluster drill CI runs
// as the cluster-smoke job: build the real binary, boot three nodes
// wired as peers with per-node cache directories, drive mixed load
// across all of them, SIGKILL one node mid-workload, keep driving the
// survivors, restart the killed node on its old address and cache
// directory, and check that
//
//   - the cluster-wide counters reconcile
//     (memory + disk + peer hits + computes == lookups),
//   - the restarted node warm-starts: its disk tier serves hits,
//   - corpus responses stay byte-identical through the whole drill.
func TestGscheddClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping binary cluster smoke test")
	}
	bin := filepath.Join(t.TempDir(), "gschedd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	const n = 3
	addrs := make([]string, n)
	urls := make([]string, n)
	dirs := make([]string, n)
	for i := range addrs {
		addrs[i] = freeAddr(t)
		urls[i] = "http://" + addrs[i]
		dirs[i] = t.TempDir()
	}
	start := func(i int) *exec.Cmd {
		var peers []string
		for k, u := range urls {
			if k != i {
				peers = append(peers, u)
			}
		}
		cmd := exec.Command(bin,
			"-addr", addrs[i],
			"-self", urls[i],
			"-peers", strings.Join(peers, ","),
			"-cache-dir", dirs[i],
			"-replicate-after", "-1", // replicate on first contact: deterministic warm disks
			"-workers", "2", "-queue", "1024")
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}
	cmds := make([]*exec.Cmd, n)
	for i := range cmds {
		cmds[i] = start(i)
	}
	defer func() {
		for _, cmd := range cmds {
			if cmd != nil && cmd.Process != nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		}
	}()
	for _, u := range urls {
		waitHealthy(t, u)
	}

	// Phase 1: mixed load over all three nodes.
	before, err := serve.Load(serve.LoadOptions{
		Targets: urls, N: 60, Concurrency: 4, Seed: 11, SkipErrors: true})
	if err != nil {
		t.Fatal(err)
	}
	if before.Codes[200] != before.Total {
		t.Fatalf("phase 1 codes: %v", before.Codes)
	}

	// Phase 2: SIGKILL node 0 — no drain, no goodbye — and keep
	// driving the survivors.
	if err := cmds[0].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmds[0].Wait()
	cmds[0] = nil
	during, err := serve.Load(serve.LoadOptions{
		Targets: urls[1:], N: 40, Concurrency: 4, Seed: 12, SkipErrors: true, Tolerate: true})
	if err != nil {
		t.Fatal(err)
	}
	for class, body := range before.Bodies {
		if !strings.HasPrefix(class, "corpus") {
			continue
		}
		if dbody, ok := during.Bodies[class]; ok && string(dbody) != string(body) {
			t.Errorf("class %s: body changed after SIGKILL", class)
		}
	}

	// Phase 3: restart node 0 on its old address and cache directory,
	// replay phase 1's request stream against it alone.
	cmds[0] = start(0)
	waitHealthy(t, urls[0])
	after, err := serve.Load(serve.LoadOptions{
		Targets: urls[:1], N: 60, Concurrency: 4, Seed: 11, SkipErrors: true})
	if err != nil {
		t.Fatal(err)
	}
	if after.Codes[200] != after.Total {
		t.Fatalf("phase 3 codes: %v", after.Codes)
	}
	for class, body := range before.Bodies {
		abody, ok := after.Bodies[class]
		if !ok {
			t.Errorf("class %s missing after restart", class)
			continue
		}
		if string(abody) != string(body) {
			t.Errorf("class %s: body differs across SIGKILL/restart", class)
		}
	}
	if after.DiskHeaders == 0 {
		t.Errorf("restarted node served no disk hits: %+v", after)
	}

	// The restarted node's own counters must reconcile against the
	// phase 3 run (its counters reset at restart and phase 3 is the
	// only traffic it has seen since).
	m, err := serve.Scrape(urls[0] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := after.CheckCounters(m); err != nil {
		t.Error(err)
	}
	if warm := m[`gschedd_store_hits_total{tier="disk"}`]; warm <= 0 {
		t.Errorf("disk tier hits = %g after warm restart, want > 0", warm)
	}

	// Graceful drain still works on a cluster node.
	if err := cmds[1].Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmds[1].Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("SIGTERM exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Error("cluster node did not drain within 10s of SIGTERM")
	}
	cmds[1] = nil
}
