package main

import (
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"gsched/internal/serve"
)

// TestGscheddSmoke builds the real binary, boots it, drives 100 mixed
// requests (cache hits, misses, an injected timeout, an invalid
// program, an injected panic), scrapes /metrics, checks that the
// counters are consistent with the client's view, and verifies a
// graceful SIGTERM drain. CI runs this as the serve-smoke job.
func TestGscheddSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping binary smoke test")
	}
	bin := filepath.Join(t.TempDir(), "gschedd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	addr := freeAddr(t)
	cmd := exec.Command(bin, "-addr", addr, "-debug-panic", "-workers", "4", "-queue", "1024")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	base := "http://" + addr
	waitHealthy(t, base)

	res, err := serve.MixedLoad(base, 100, 6, true)
	if err != nil {
		t.Fatal(err)
	}
	m, err := serve.Scrape(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckCounters(m); err != nil {
		t.Error(err)
	}
	if res.Total != 100 {
		t.Errorf("drove %d requests, want 100", res.Total)
	}
	// No 5xx beyond the injected panic: one 500, zero 503 (the queue
	// is deep enough for 6-way concurrency).
	if res.Codes[500] != 1 || res.Codes[503] != 0 {
		t.Errorf("unexpected 5xx mix: %v", res.Codes)
	}
	if res.Codes[400] == 0 || res.Codes[504] == 0 {
		t.Errorf("injected failures missing from %v", res.Codes)
	}
	if hits := m["gschedd_cache_hits_total"]; hits <= 0 {
		t.Errorf("cache hit ratio is zero (hits %g) on a repeated corpus", hits)
	}
	for _, series := range []string{
		"gschedd_cache_evictions_total", "gschedd_queue_depth",
		`gschedd_phase_seconds_total{phase="region"}`,
	} {
		if _, ok := m[series]; !ok {
			t.Errorf("metrics missing series %s", series)
		}
	}

	// Graceful drain: SIGTERM must exit cleanly (status 0).
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("SIGTERM exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Error("daemon did not drain within 10s of SIGTERM")
	}
	cmd.Process = nil
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal(fmt.Errorf("daemon never became healthy at %s", base))
}
