package main

import (
	"path/filepath"
	"testing"
)

func TestRealMainCleanSweep(t *testing.T) {
	*seed = 3
	*programs = 2
	*randoms = 1
	*bruteMax = 7
	*maxBugs = 3
	*outDir = ""
	*inject = false
	rep, err := realMain()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cells == 0 || len(rep.Mismatches) != 0 {
		t.Fatalf("clean sweep failed: %s", rep)
	}
}

func TestRealMainInjectWritesRepro(t *testing.T) {
	dir := t.TempDir()
	*seed = 3
	*programs = 2
	*randoms = 1
	*bruteMax = 7
	*maxBugs = 1
	*outDir = dir
	*inject = true
	rep, err := realMain()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mismatches) == 0 {
		t.Fatal("injected bug not caught")
	}
	files, _ := filepath.Glob(filepath.Join(dir, "repro-*.asm"))
	if len(files) == 0 {
		t.Error("no reproducer written")
	}
}
