// Command difftest runs the differential-testing engine: seeded-random
// programs × a configuration lattice of machines and scheduler options,
// cross-checked by differential simulation, the independent legality
// verifier, exhaustive schedule enumeration on small blocks, and the
// exact branch-and-bound scheduler against that enumeration. Any
// disagreement is shrunk to a minimal reproducer.
//
// Usage:
//
//	difftest [flags]
//
// Examples:
//
//	difftest -seed 42 -programs 16
//	difftest -seed 1 -out testdata/difftest
//	difftest -inject        // self-test: plant a bug, expect a catch
//	difftest -policy        // sweep only the scheduling-policy cells
package main

import (
	"flag"
	"fmt"
	"os"

	"gsched/internal/difftest"
)

var (
	seed      = flag.Int64("seed", 1, "base seed for programs and random machines")
	programs  = flag.Int("programs", 8, "number of generated programs to sweep")
	randoms   = flag.Int("machines", 2, "number of seeded-random machines beyond the presets")
	bruteMax  = flag.Int("brute", 8, "largest block fed to the exhaustive-schedule oracle")
	maxBugs   = flag.Int("max-mismatches", 3, "stop after this many shrunk reproducers")
	outDir    = flag.String("out", "", "write shrunk reproducers (.asm) into this directory")
	inject    = flag.Bool("inject", false, "self-test: corrupt every schedule with a dependence swap; exit 0 only if the engine catches it")
	policyF   = flag.Bool("policy", false, "sweep only the scheduling-policy cells of the lattice")
	quietFlag = flag.Bool("q", false, "print only the final summary line")
)

func main() {
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: difftest [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	rep, err := realMain()
	if err != nil {
		fmt.Fprintln(os.Stderr, "difftest:", err)
		os.Exit(1)
	}
	if !*quietFlag {
		for _, m := range rep.Mismatches {
			fmt.Printf("MISMATCH %s\n%s\n", m, m.Asm)
		}
	}
	fmt.Println(rep)
	if *inject {
		if len(rep.Mismatches) == 0 {
			fmt.Fprintln(os.Stderr, "difftest: injected bug was NOT caught")
			os.Exit(1)
		}
		fmt.Println("difftest: injected bug caught and shrunk; harness is alive")
		return
	}
	if len(rep.Mismatches) > 0 {
		os.Exit(1)
	}
}

func realMain() (*difftest.Report, error) {
	e := &difftest.Engine{
		Seed:           *seed,
		Programs:       *programs,
		RandomMachines: *randoms,
		BruteMax:       *bruteMax,
		MaxMismatches:  *maxBugs,
		OutDir:         *outDir,
		PolicyOnly:     *policyF,
	}
	if *inject {
		e.Mutate = difftest.SwapDependent
	}
	return e.Run()
}
