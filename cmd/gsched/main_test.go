package main

import (
	"os"
	"path/filepath"
	"testing"

	"gsched"
)

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]gsched.Level{
		"none":        gsched.LevelNone,
		"useful":      gsched.LevelUseful,
		"speculative": gsched.LevelSpeculative,
	} {
		got, err := parseLevel(s)
		if err != nil || got != want {
			t.Errorf("parseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseLevel("bogus"); err == nil {
		t.Error("bogus level accepted")
	}
}

func TestParseMachine(t *testing.T) {
	m, err := parseMachine("rs6k")
	if err != nil || m.NumUnits[0] != 1 {
		t.Errorf("rs6k: %v, %v", m, err)
	}
	m, err = parseMachine("4x2")
	if err != nil || m.NumUnits[0] != 4 {
		t.Errorf("4x2: %v, %v", m, err)
	}
	for _, bad := range []string{"", "x", "0x1", "axb", "3"} {
		if _, err := parseMachine(bad); err == nil {
			t.Errorf("parseMachine(%q) accepted", bad)
		}
	}
}

func TestRealMainCompilesAndRuns(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.c")
	src := `int f(int a) { return a * 7; }`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// Exercise realMain with flags set directly.
	*level = "speculative"
	*machineF = "rs6k"
	*pipeline = true
	*printAsm = false
	*run = "f"
	*argsF = "6"
	*stats = false
	*lang = ""
	*dot = ""
	*trace = 0
	if err := realMain(path); err != nil {
		t.Fatalf("realMain: %v", err)
	}
}

func TestRealMainRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "broken.c")
	if err := os.WriteFile(path, []byte("int f( {"), 0o644); err != nil {
		t.Fatal(err)
	}
	*run = ""
	*dot = ""
	if err := realMain(path); err == nil {
		t.Error("broken source accepted")
	}
	if err := realMain(filepath.Join(dir, "missing.c")); err == nil {
		t.Error("missing file accepted")
	}
}
