// Command gsched compiles a mini-C or assembly source file, schedules it
// at the requested level, and optionally runs it on the simulated
// machine.
//
// Usage:
//
//	gsched [flags] file.(c|s)
//
// Examples:
//
//	gsched -level speculative -print prog.c
//	gsched -level useful -run main -args 100 prog.c
//	gsched -machine 4x2 -pipeline -run vm prog.s
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"gsched"
	"gsched/internal/cfg"
)

var (
	level    = flag.String("level", "speculative", "scheduling level: none, useful, speculative, dup, optimal")
	machineF = flag.String("machine", "rs6k", "machine model: rs6k, or NxM for N fixed and M branch units")
	pipeline = flag.Bool("pipeline", true, "run the full §6 pipeline (unroll/rotate) instead of plain scheduling")
	printAsm = flag.Bool("print", false, "print the scheduled program as assembly")
	run      = flag.String("run", "", "run this function after scheduling")
	argsF    = flag.String("args", "", "comma-separated integer arguments for -run")
	stats    = flag.Bool("stats", false, "print scheduling statistics")
	lang     = flag.String("lang", "", "input language: c or asm (default: by file extension)")
	dot      = flag.String("dot", "", "emit the Graphviz CFG of this function to stdout")
	trace    = flag.Int64("trace", 0, "with -run: print the issue trace of the first N instructions")
	verifyF  = flag.Bool("verify", false, "check every schedule with the independent legality verifier; fail on violations")
	jobs     = flag.Int("jobs", runtime.NumCPU(), "schedule this many functions concurrently (1 = sequential); schedules are identical at any setting")
	profIn   = flag.String("profile", "", "edge profile file (gsched-profile v1) guiding speculation and, at -level dup, superblock formation")
	profOut  = flag.String("profile-out", "", "with -run: write the run's edge profile to this file")
	policyF  = flag.String("policy", "", "scheduling policy expression replacing the §5.2 priority order (or @file to read one); 'default' names the built-in order")
	cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProf  = flag.String("memprofile", "", "write a heap profile at exit to this file")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gsched [flags] file.(c|s)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gsched:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "gsched:", err)
			os.Exit(1)
		}
		defer f.Close()
	}
	err := realMain(flag.Arg(0))
	if *cpuProf != "" {
		pprof.StopCPUProfile()
	}
	if *memProf != "" {
		if perr := writeHeapProfile(*memProf); perr != nil && err == nil {
			err = perr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsched:", err)
		os.Exit(1)
	}
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

func realMain(path string) error {
	if *profOut != "" && *run == "" {
		return fmt.Errorf("-profile-out requires -run")
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	l := *lang
	if l == "" {
		if strings.HasSuffix(path, ".c") {
			l = "c"
		} else {
			l = "asm"
		}
	}
	if l != "c" && l != "asm" {
		return fmt.Errorf("unknown language %q", l)
	}

	mach, err := parseMachine(*machineF)
	if err != nil {
		return err
	}
	lv, err := parseLevel(*level)
	if err != nil {
		return err
	}
	opts := gsched.Defaults(mach, lv)
	opts.Verify = *verifyF
	opts.Parallelism = *jobs
	if *profIn != "" {
		data, err := os.ReadFile(*profIn)
		if err != nil {
			return err
		}
		prof, err := gsched.ParseProfile(string(data))
		if err != nil {
			return fmt.Errorf("%s: %w", *profIn, err)
		}
		opts.Profile = prof
	}
	if *policyF != "" {
		src := *policyF
		switch {
		case src == "default":
			src = gsched.DefaultPolicySource
		case strings.HasPrefix(src, "@"):
			data, err := os.ReadFile(src[1:])
			if err != nil {
				return err
			}
			src = string(data)
		}
		pol, err := gsched.ParsePolicy(src)
		if err != nil {
			return err
		}
		opts.Policy = pol
	}

	// The simulator and the CFG dump need the whole program in memory;
	// everything else runs through the streaming pipeline, which
	// produces identical bytes while scheduling functions as the parser
	// yields them. Sources that define a function twice fall back to
	// the materializing path (last-definition-wins needs the whole
	// unit).
	if *run == "" && *dot == "" {
		cfg := gsched.StreamConfig{Opts: opts, Jobs: *jobs}
		if *pipeline {
			cfg.Pipeline, cfg.UsePipeline = gsched.DefaultPipeline(), true
		}
		var out io.Writer
		var bw *bufio.Writer
		if *printAsm {
			bw = bufio.NewWriter(os.Stdout)
			out = bw
		}
		res, err := gsched.ScheduleStream(context.Background(), l, string(src), cfg, out)
		if err == nil {
			if bw != nil {
				if err := bw.Flush(); err != nil {
					return err
				}
			}
			printStats(res.Stats)
			return nil
		}
		if !errors.Is(err, gsched.ErrDuplicateFunc) {
			return err
		}
	}

	var prog *gsched.Program
	switch l {
	case "c":
		prog, err = gsched.CompileC(string(src))
	case "asm":
		prog, err = gsched.ParseAsm(string(src))
	}
	if err != nil {
		return err
	}
	var st gsched.PipelineStats
	if *pipeline {
		st, err = gsched.SchedulePipeline(prog, opts, gsched.DefaultPipeline())
	} else {
		st.Stats, err = gsched.Schedule(prog, opts)
	}
	if err != nil {
		return err
	}
	printStats(st)
	if *printAsm {
		fmt.Print(gsched.PrintAsm(prog))
	}
	if *dot != "" {
		f := prog.Func(*dot)
		if f == nil {
			return fmt.Errorf("no function %q", *dot)
		}
		g := cfg.Build(f)
		li := cfg.FindLoops(g)
		fmt.Print(g.DOT(f.Name, li))
	}
	if *run != "" {
		var args []int64
		if *argsF != "" {
			for _, tok := range strings.Split(*argsF, ",") {
				v, err := strconv.ParseInt(strings.TrimSpace(tok), 10, 64)
				if err != nil {
					return fmt.Errorf("bad argument %q", tok)
				}
				args = append(args, v)
			}
		}
		ropts := gsched.RunOptions{Machine: mach, ForgivingLoads: lv >= gsched.LevelSpeculative}
		if *trace > 0 {
			ropts.Trace = os.Stdout
			ropts.TraceLimit = *trace
		}
		var outProf *gsched.Profile
		if *profOut != "" {
			outProf = gsched.NewProfile()
			ropts.Profile = outProf
		}
		res, err := gsched.Run(prog, *run, args, nil, ropts)
		if err != nil {
			return err
		}
		fmt.Printf("%s(%v) = %d\n", *run, args, res.Ret)
		fmt.Printf("cycles %d, instructions %d\n", res.Cycles, res.Instrs)
		if len(res.Printed) > 0 {
			fmt.Printf("printed: %s\n", res.PrintedString())
		}
		if outProf != nil {
			if err := os.WriteFile(*profOut, []byte(outProf.Canonical()), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

func printStats(st gsched.PipelineStats) {
	if !*stats {
		return
	}
	fmt.Printf("regions scheduled %d, skipped %d; moves: %d useful, %d speculative, %d duplicated; webs renamed %d; loops unrolled %d, rotated %d; blocks tail-duplicated %d\n",
		st.RegionsScheduled, st.RegionsSkipped, st.UsefulMoves, st.SpeculativeMoves, st.DuplicatedMoves,
		st.RenamedWebs, st.LoopsUnrolled, st.LoopsRotated, st.TailDuplicated)
	if st.ExactBlocks > 0 {
		fmt.Printf("exact: %d blocks searched, %d improved, %d cycles saved\n",
			st.ExactBlocks, st.ExactImproved, st.ExactCyclesSaved)
	}
}

func parseLevel(s string) (gsched.Level, error) {
	switch s {
	case "none":
		return gsched.LevelNone, nil
	case "useful":
		return gsched.LevelUseful, nil
	case "speculative":
		return gsched.LevelSpeculative, nil
	case "dup":
		return gsched.LevelDup, nil
	case "optimal":
		return gsched.LevelOptimal, nil
	}
	return 0, fmt.Errorf("unknown level %q", s)
}

func parseMachine(s string) (*gsched.Machine, error) {
	if s == "rs6k" {
		return gsched.RS6K(), nil
	}
	parts := strings.Split(s, "x")
	if len(parts) == 2 {
		nf, err1 := strconv.Atoi(parts[0])
		nb, err2 := strconv.Atoi(parts[1])
		if err1 == nil && err2 == nil && nf > 0 && nb > 0 {
			return gsched.Superscalar(nf, nb), nil
		}
	}
	return nil, fmt.Errorf("unknown machine %q (want rs6k or NxM)", s)
}
